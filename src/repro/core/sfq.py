"""SFQ — Start-time Fair Queueing (Goyal, Vin & Cheng).

SFQ orders service by *start* tag instead of finish tag and sets the system
virtual time to the start tag of the packet in service.  Like SCFQ it needs
no fluid tracking (O(1) virtual time); unlike finish-tag schedulers it does
not privilege high-share flows during bursts, which gives it reasonable
(but still N-dependent) fairness and a delay bound looser than WFQ's.

It is included as another low-complexity baseline against which WF2Q+'s
simultaneous tight-delay + small-WFI + O(log N) combination is measured.

Tags (per flow, updated at head of queue):

    S_i = max(F_i, V)   on becoming backlogged;  S_i = F_i otherwise
    F_i = S_i + L / r_i

Policy: smallest *start* tag first; V = start tag of packet entering service.
"""

from repro.core.scheduler import (
    BATCH_KERNEL_MIN,
    PacketScheduler,
    ScheduledPacket,
    kernel_sized,
)
from repro.dstruct.heap import IndexedHeap

__all__ = ["SFQScheduler"]


class SFQScheduler(PacketScheduler):
    """One-level Start-time Fair Queueing server."""

    name = "SFQ"

    def __init__(self, rate):
        super().__init__(rate)
        self._virtual = 0
        self._heads = IndexedHeap()  # backlogged flows keyed by start tag

    def _set_head_tags(self, state, was_flow_empty):
        head = state.head()
        if state.tag_epoch != self._tag_epoch:
            state.start_tag = 0  # lazy busy-period reset
            state.finish_tag = 0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._virtual)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length * self._inv_rate(state)
        self._heads.push_or_update(
            state.flow_id, (state.start_tag, state.index)
        )

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        # A new busy period starts only once the in-flight packet (if any)
        # has left the link; an arrival during transmission keeps the
        # current virtual time and tags.  Tag clearing is lazy (epoch bump;
        # each flow zeroes its own tags on next read) so the boundary is
        # O(1) instead of O(N).
        if was_idle and now >= self._free_at:
            self._virtual = 0
            self._tag_epoch += 1
        if was_flow_empty:
            self._set_head_tags(state, True)

    def _select_flow(self, now):
        flow_id = self._heads.peek_item()
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        self._virtual = state.start_tag
        heads = self._heads
        if heads.peek_item() == state.flow_id:
            # The served flow is the heap top (start-tag selection), so it
            # can be re-keyed in a single sift.
            if state.queue:
                start = state.finish_tag  # Q != 0: S = F
                state.start_tag = start
                state.finish_tag = start + \
                    state.queue[0].length * self._inv_rate(state)
                heads.replace_top(state.flow_id, (start, state.index))
            else:
                heads.pop()
        else:  # subclass with a different selection policy
            heads.remove(state.flow_id)
            if state.queue:
                self._set_head_tags(state, False)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=state.start_tag,
            virtual_finish=state.finish_tag,
        )

    def virtual_time(self):
        return self._virtual

    def system_virtual_time(self, now=None):
        return self._virtual

    # ------------------------------------------------------------------
    # Batch operations (amortized chunk kernels)
    # ------------------------------------------------------------------
    def enqueue_batch(self, packets, now=None):
        # _on_enqueue is a no-op for a packet joining a non-empty queue,
        # which is exactly the passive kernel's contract.
        if (self._obs is None and not self._buffer_limits
                and self._shared_limit is None
                and type(self)._on_enqueue is SFQScheduler._on_enqueue
                and kernel_sized(packets)):
            return self._enqueue_batch_passive(packets, now)
        return PacketScheduler.enqueue_batch(self, packets, now)

    def dequeue_batch(self, n, now=None):
        if (type(self) is SFQScheduler and self._obs is None
                and n >= BATCH_KERNEL_MIN):
            return self._dequeue_chunk(n, None, now, [])
        return PacketScheduler.dequeue_batch(self, n, now)

    def drain_until(self, limit, now=None, into=None):
        if type(self) is SFQScheduler and self._obs is None:
            return self._dequeue_chunk(
                self.drain_chunk, limit, now, [] if into is None else into)
        return PacketScheduler.drain_until(self, limit, now, into)

    def _dequeue_chunk(self, n, limit, now, records):
        """Amortized dequeue: smallest-start selection and the single-sift
        re-key inlined per packet; see
        :meth:`repro.core.wf2qplus.WF2QPlusScheduler._dequeue_chunk` for
        the shared contract.
        """
        backlog = self._backlog_packets
        if backlog == 0 or (n is not None and n <= 0):
            self._count_batch(0)
            return records
        clock = self._clock
        if now is None:
            now = clock if clock > self._free_at else self._free_at
        elif now < clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {clock!r}"
            )
        if n is None:
            n = backlog
        flows = self._flows
        backlogged = self._backlogged
        rate = self._rate
        total_share = self._total_share
        gen = self._share_gen
        heads = self._heads
        hent = heads.entries
        replace_top = heads.replace_top
        virtual = self._virtual
        backlog_bits = self._backlog_bits
        append = records.append
        count = 0
        try:
            while count < n and backlog:
                flow_id = hent[0][2]
                state = flows[flow_id]
                queue = state.queue
                packet = queue.popleft()
                length = packet.length
                state.bits_queued -= length
                backlog -= 1
                backlog_bits -= length
                finish = now + length / rate
                start_tag = state.start_tag
                finish_tag = state.finish_tag
                append(ScheduledPacket(packet, now, finish,
                                       start_tag, finish_tag))
                virtual = start_tag  # V = start tag of packet in service
                if queue:
                    start = finish_tag  # Q != 0: S = F
                    state.start_tag = start
                    if state.rate_gen != gen:
                        state.inv_rate = 1 / (
                            state.config.share / total_share * rate
                        )
                        state.rate_gen = gen
                    state.finish_tag = start + queue[0].length * state.inv_rate
                    replace_top(flow_id, (start, state.index))
                else:
                    heads.pop()
                    del backlogged[flow_id]
                count += 1
                clock = now
                now = finish
                if limit is not None and finish >= limit:
                    break
        finally:
            self._clock = clock
            self._free_at = now if count else self._free_at
            self._virtual = virtual
            self._backlog_packets = backlog
            self._backlog_bits = backlog_bits
            self._dequeues += count
            self._count_batch(count)
        return records

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # The heap is keyed by start tags, which persist across a share or
        # rate change; only the derived finish tags need recomputing.
        for state in self._flows.values():
            if state.queue:
                state.finish_tag = state.start_tag \
                    + state.queue[0].length * self._inv_rate(state)

    def _on_packet_evicted(self, state, packet, index, now):
        if index != 0:
            return
        if state.queue:
            # Start tag (the heap key) is inherited; only F changes.
            state.finish_tag = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
        else:
            state.finish_tag = state.start_tag
            self._heads.discard(state.flow_id)

    def _snapshot_extra(self):
        return {"virtual": self._virtual, "heads": self._heads.snapshot()}

    def _restore_extra(self, extra, uid_map):
        self._virtual = extra["virtual"]
        self._heads.restore(extra["heads"])
