"""SFQ — Start-time Fair Queueing (Goyal, Vin & Cheng).

SFQ orders service by *start* tag instead of finish tag and sets the system
virtual time to the start tag of the packet in service.  Like SCFQ it needs
no fluid tracking (O(1) virtual time); unlike finish-tag schedulers it does
not privilege high-share flows during bursts, which gives it reasonable
(but still N-dependent) fairness and a delay bound looser than WFQ's.

It is included as another low-complexity baseline against which WF2Q+'s
simultaneous tight-delay + small-WFI + O(log N) combination is measured.

Tags (per flow, updated at head of queue):

    S_i = max(F_i, V)   on becoming backlogged;  S_i = F_i otherwise
    F_i = S_i + L / r_i

Policy: smallest *start* tag first; V = start tag of packet entering service.
"""

from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap

__all__ = ["SFQScheduler"]


class SFQScheduler(PacketScheduler):
    """One-level Start-time Fair Queueing server."""

    name = "SFQ"

    def __init__(self, rate):
        super().__init__(rate)
        self._virtual = 0
        self._heads = IndexedHeap()  # backlogged flows keyed by start tag

    def _set_head_tags(self, state, was_flow_empty):
        head = state.head()
        if state.tag_epoch != self._tag_epoch:
            state.start_tag = 0  # lazy busy-period reset
            state.finish_tag = 0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._virtual)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length * self._inv_rate(state)
        self._heads.push_or_update(
            state.flow_id, (state.start_tag, state.index)
        )

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        # A new busy period starts only once the in-flight packet (if any)
        # has left the link; an arrival during transmission keeps the
        # current virtual time and tags.  Tag clearing is lazy (epoch bump;
        # each flow zeroes its own tags on next read) so the boundary is
        # O(1) instead of O(N).
        if was_idle and now >= self._free_at:
            self._virtual = 0
            self._tag_epoch += 1
        if was_flow_empty:
            self._set_head_tags(state, True)

    def _select_flow(self, now):
        flow_id = self._heads.peek_item()
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        self._virtual = state.start_tag
        heads = self._heads
        if heads.peek_item() == state.flow_id:
            # The served flow is the heap top (start-tag selection), so it
            # can be re-keyed in a single sift.
            if state.queue:
                start = state.finish_tag  # Q != 0: S = F
                state.start_tag = start
                state.finish_tag = start + \
                    state.queue[0].length * self._inv_rate(state)
                heads.replace_top(state.flow_id, (start, state.index))
            else:
                heads.pop()
        else:  # subclass with a different selection policy
            heads.remove(state.flow_id)
            if state.queue:
                self._set_head_tags(state, False)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=state.start_tag,
            virtual_finish=state.finish_tag,
        )

    def virtual_time(self):
        return self._virtual

    def system_virtual_time(self, now=None):
        return self._virtual

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # The heap is keyed by start tags, which persist across a share or
        # rate change; only the derived finish tags need recomputing.
        for state in self._flows.values():
            if state.queue:
                state.finish_tag = state.start_tag \
                    + state.queue[0].length * self._inv_rate(state)

    def _on_packet_evicted(self, state, packet, index, now):
        if index != 0:
            return
        if state.queue:
            # Start tag (the heap key) is inherited; only F changes.
            state.finish_tag = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
        else:
            state.finish_tag = state.start_tag
            self._heads.discard(state.flow_id)

    def _snapshot_extra(self):
        return {"virtual": self._virtual, "heads": self._heads.snapshot()}

    def _restore_extra(self, extra, uid_map):
        self._virtual = extra["virtual"]
        self._heads.restore(extra["heads"])
