"""The packet model shared by every scheduler and the simulator.

A :class:`Packet` is deliberately minimal: a flow id, a length in bits, and
optional bookkeeping fields (arrival time, sequence number, and an opaque
``payload`` used by higher layers such as the TCP model).  Schedulers never
mutate packets; all scheduling state lives in the scheduler.

Lengths and times are plain numbers so that exact tests can use
:class:`fractions.Fraction` while simulations use floats.
"""

import itertools

__all__ = ["Packet", "PacketPool"]

_packet_ids = itertools.count()


class Packet:
    """An immutable-ish network packet.

    Parameters
    ----------
    flow_id:
        Identifier of the flow (session / leaf node) the packet belongs to.
    length:
        Packet length in bits.  Must be positive.
    arrival_time:
        Time the packet arrived at the scheduler (seconds).  Optional for
        schedulers driven directly (non-simulated); required by delay
        analysis.
    seqno:
        Per-flow sequence number, assigned by the caller (sources do this).
    payload:
        Opaque object carried through the scheduler untouched (e.g. a TCP
        segment descriptor).
    """

    __slots__ = ("uid", "flow_id", "length", "arrival_time", "seqno", "payload")

    def __init__(self, flow_id, length, arrival_time=None, seqno=None, payload=None):
        if length <= 0:
            raise ValueError(f"packet length must be positive, got {length!r}")
        self.uid = next(_packet_ids)
        self.flow_id = flow_id
        self.length = length
        self.arrival_time = arrival_time
        self.seqno = seqno
        self.payload = payload

    def to_dict(self):
        """Plain-data form for checkpointing (see ``from_dict``).

        ``payload`` is carried by reference, not serialised: snapshots are
        in-process checkpoints, and higher layers (e.g. the TCP model) own
        whatever lifecycle their payload objects have.
        """
        return {
            "uid": self.uid,
            "flow_id": self.flow_id,
            "length": self.length,
            "arrival_time": self.arrival_time,
            "seqno": self.seqno,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, d):
        """Rebuild a packet from ``to_dict``, preserving its ``uid``.

        The global uid counter is not rewound: packets created after a
        restore keep drawing fresh ids, so a restored packet and a new one
        can never collide.
        """
        packet = cls(d["flow_id"], d["length"],
                     arrival_time=d["arrival_time"], seqno=d["seqno"],
                     payload=d["payload"])
        packet.uid = d["uid"]
        return packet

    def __repr__(self):
        parts = [f"flow={self.flow_id!r}", f"len={self.length!r}"]
        if self.arrival_time is not None:
            parts.append(f"t={self.arrival_time!r}")
        if self.seqno is not None:
            parts.append(f"seq={self.seqno}")
        return f"Packet({', '.join(parts)})"

    def __hash__(self):
        return hash(self.uid)

    def __eq__(self, other):
        return self is other


class PacketPool:
    """A free list recycling :class:`Packet` objects through the hot path.

    Pipeline builders hand the same pool to the traffic sources (which
    :meth:`acquire` instead of constructing) and to the
    :class:`~repro.sim.link.Link` (which :meth:`release` each packet the
    moment nothing downstream can retain it — no receiver, no
    packet-retaining trace, no drop callback).  Observability events
    carry ``packet_uid``, never the object, so sinks are always safe.

    :meth:`acquire` draws ``next(_packet_ids)`` exactly as construction
    would, so the uid stream — and every trace/digest keyed on it — is
    byte-identical with or without the pool, and a recycled packet can
    never alias a uid captured earlier (e.g. in a checkpoint): each
    acquire is a brand-new identity on a reused allocation.

    ``epoch`` counts :meth:`flush` calls; the Link flushes on
    checkpoint-restore so no pre-rollback object crosses the timeline.
    """

    __slots__ = ("_free", "cap", "hits", "misses", "epoch")

    def __init__(self, cap=4096):
        self._free = []
        self.cap = cap
        self.hits = 0
        self.misses = 0
        self.epoch = 0

    def __len__(self):
        return len(self._free)

    @property
    def hit_rate(self):
        """Fraction of acquires served from the free list."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def acquire(self, flow_id, length, arrival_time=None, seqno=None,
                payload=None):
        """A packet with the given fields and a *fresh* uid."""
        free = self._free
        if free:
            if length <= 0:
                raise ValueError(
                    f"packet length must be positive, got {length!r}")
            packet = free.pop()
            packet.uid = next(_packet_ids)
            packet.flow_id = flow_id
            packet.length = length
            packet.arrival_time = arrival_time
            packet.seqno = seqno
            packet.payload = payload
            self.hits += 1
            return packet
        self.misses += 1
        return Packet(flow_id, length, arrival_time=arrival_time,
                      seqno=seqno, payload=payload)

    def release(self, packet):
        """Return a packet nothing references anymore to the free list."""
        free = self._free
        if len(free) < self.cap:
            packet.payload = None
            free.append(packet)

    def flush(self):
        """Drop the free list (checkpoint rollback crossed a timeline)."""
        self._free.clear()
        self.epoch += 1

    def __repr__(self):
        return (f"PacketPool(free={len(self._free)}, hits={self.hits}, "
                f"misses={self.misses})")
