"""The packet model shared by every scheduler and the simulator.

A :class:`Packet` is deliberately minimal: a flow id, a length in bits, and
optional bookkeeping fields (arrival time, sequence number, and an opaque
``payload`` used by higher layers such as the TCP model).  Schedulers never
mutate packets; all scheduling state lives in the scheduler.

Lengths and times are plain numbers so that exact tests can use
:class:`fractions.Fraction` while simulations use floats.
"""

import itertools

__all__ = ["Packet"]

_packet_ids = itertools.count()


class Packet:
    """An immutable-ish network packet.

    Parameters
    ----------
    flow_id:
        Identifier of the flow (session / leaf node) the packet belongs to.
    length:
        Packet length in bits.  Must be positive.
    arrival_time:
        Time the packet arrived at the scheduler (seconds).  Optional for
        schedulers driven directly (non-simulated); required by delay
        analysis.
    seqno:
        Per-flow sequence number, assigned by the caller (sources do this).
    payload:
        Opaque object carried through the scheduler untouched (e.g. a TCP
        segment descriptor).
    """

    __slots__ = ("uid", "flow_id", "length", "arrival_time", "seqno", "payload")

    def __init__(self, flow_id, length, arrival_time=None, seqno=None, payload=None):
        if length <= 0:
            raise ValueError(f"packet length must be positive, got {length!r}")
        self.uid = next(_packet_ids)
        self.flow_id = flow_id
        self.length = length
        self.arrival_time = arrival_time
        self.seqno = seqno
        self.payload = payload

    def to_dict(self):
        """Plain-data form for checkpointing (see ``from_dict``).

        ``payload`` is carried by reference, not serialised: snapshots are
        in-process checkpoints, and higher layers (e.g. the TCP model) own
        whatever lifecycle their payload objects have.
        """
        return {
            "uid": self.uid,
            "flow_id": self.flow_id,
            "length": self.length,
            "arrival_time": self.arrival_time,
            "seqno": self.seqno,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, d):
        """Rebuild a packet from ``to_dict``, preserving its ``uid``.

        The global uid counter is not rewound: packets created after a
        restore keep drawing fresh ids, so a restored packet and a new one
        can never collide.
        """
        packet = cls(d["flow_id"], d["length"],
                     arrival_time=d["arrival_time"], seqno=d["seqno"],
                     payload=d["payload"])
        packet.uid = d["uid"]
        return packet

    def __repr__(self):
        parts = [f"flow={self.flow_id!r}", f"len={self.length!r}"]
        if self.arrival_time is not None:
            parts.append(f"t={self.arrival_time!r}")
        if self.seqno is not None:
            parts.append(f"seq={self.seqno}")
        return f"Packet({', '.join(parts)})"

    def __hash__(self):
        return hash(self.uid)

    def __eq__(self, other):
        return self is other
