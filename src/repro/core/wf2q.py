"""WF2Q — Worst-case Fair Weighted Fair Queueing (Bennett & Zhang, 1996).

WF2Q applies the *Smallest Eligible virtual Finish time First* (SEFF)
policy: among the packets that have already *started* service in the
corresponding GPS fluid system (virtual start tag ``S <= V_GPS(now)``), it
transmits the one with the smallest virtual finish tag.

Eligibility is the whole difference from WFQ, and it buys worst-case
fairness: Theorem 3 gives WF2Q a B-WFI of
``L_i,max + (L_max - L_i,max) * r_i / r`` — *independent of N* — against
WFQ's O(N) packets.  The price is that WF2Q still needs the exact GPS virtual
time, hence O(N) worst-case work per packet; WF2Q+ removes that cost.

Implementation: two indexed heaps per the classic construction —

* ``_ineligible``: flows whose head packet has ``S > V``, keyed by S;
* ``_eligible``: flows whose head packet has ``S <= V``, keyed by F.

On every selection we advance V_GPS and migrate newly eligible flows from
one heap to the other; each flow migrates at most once per head packet, so
the amortised cost is O(log N) on top of the GPS tracking.
"""

from repro.core.gps import GPSFluidSystem
from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.core.wfq import ExactGPSLimitsMixin
from repro.dstruct.heap import IndexedHeap

__all__ = ["WF2QScheduler"]


class WF2QScheduler(ExactGPSLimitsMixin, PacketScheduler):
    """One-level WF2Q server with exact GPS virtual time (SEFF policy)."""

    name = "WF2Q"
    seff = True

    def __init__(self, rate):
        super().__init__(rate)
        self._gps = GPSFluidSystem(rate)
        self._tags = {}
        self._eligible = IndexedHeap()    # keyed by head virtual finish
        self._ineligible = IndexedHeap()  # keyed by head virtual start

    # -- registration ---------------------------------------------------
    def _on_flow_added(self, state):
        self._gps.add_flow(state.flow_id, state.share)

    # -- arrivals ---------------------------------------------------------
    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        gps_pkt = self._gps.arrive(state.flow_id, packet.length, now)
        self._tags[packet.uid] = gps_pkt
        if was_flow_empty:
            self._classify(state.flow_id, gps_pkt, self._gps.virtual_time())

    def _classify(self, flow_id, gps_pkt, virtual_now):
        index = self._flows[flow_id].index
        if gps_pkt.virtual_start <= virtual_now:
            self._eligible.push(flow_id, (gps_pkt.virtual_finish, index))
        else:
            self._ineligible.push(flow_id, (gps_pkt.virtual_start, index))

    def _promote_eligible(self, virtual_now):
        while self._ineligible and self._ineligible.min_key()[0] <= virtual_now:
            flow_id, _key = self._ineligible.pop()
            state = self._flows[flow_id]
            head = state.head()
            self._eligible.push(
                flow_id, (self._tags[head.uid].virtual_finish, state.index)
            )

    # -- service ----------------------------------------------------------
    def _select_flow(self, now):
        virtual_now = self._gps.virtual_time(now)
        self._promote_eligible(virtual_now)
        if self._eligible:
            flow_id = self._eligible.peek_item()
        else:
            # Theory guarantees an eligible packet whenever the packet
            # system is busy at a GPS-busy instant; with a non-work-
            # conserving driver (late dequeues after GPS drained) every
            # queued packet has started GPS service long ago, so the
            # ineligible heap can only be non-empty transiently.  Fall back
            # to the earliest virtual start to stay work-conserving.
            flow_id = self._ineligible.peek_item()
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        self._tags.pop(packet.uid)
        flow_id = state.flow_id
        if not self._eligible.discard(flow_id):
            self._ineligible.remove(flow_id)
        head = state.head()
        if head is not None:
            self._classify(flow_id, self._tags[head.uid], self._gps.virtual_time())

    def _make_record(self, state, packet, now, finish):
        tags = self._tags[packet.uid]
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=tags.virtual_start,
            virtual_finish=tags.virtual_finish,
        )

    # -- introspection -----------------------------------------------------
    @property
    def gps(self):
        """The embedded fluid GPS reference (read-only use recommended)."""
        return self._gps

    def gps_virtual_time(self, now=None):
        return self._gps.virtual_time(now)

    def system_virtual_time(self, now=None):
        return self._gps.virtual_time(now)
