"""WF2Q+ — the paper's primary contribution (Section 3.4).

WF2Q+ keeps WF2Q's *Smallest Eligible virtual Finish time First* (SEFF)
policy but replaces the O(N) exact GPS virtual time with the self-contained
system virtual time of eq. (27):

    V(t + tau) = max( V(t) + tau,  min over backlogged i of S_i )

where ``S_i`` is the virtual start tag of the packet at the head of session
i's queue.  The two properties that matter (both discussed in the paper):

* **minimum slope 1** (the ``V(t) + tau`` arm) — necessary and sufficient for
  delay bounds within one packet of GPS;
* **V >= min start tag** (the ``min S_i`` arm) — a newly backlogged session's
  start tag (``S = max(F_old, V)``) is then at least as large as some
  currently backlogged session's, which yields the N-independent WFI of
  Theorem 4, and it guarantees at least one eligible packet, i.e. work
  conservation.

Per-session (not per-packet) tags follow eqs. (28)-(29): when a packet
reaches the head of session i's queue,

    S_i = F_i                      if the queue was non-empty
    S_i = max(F_i, V(arrival))     if the session was idle
    F_i = S_i + L / r_i

Tags are in seconds of guaranteed service: ``r_i`` is the session's absolute
guaranteed rate ``share_i / total_share * link_rate``.

Complexity: one :class:`~repro.dstruct.heap.IndexedHeap` keyed by start tag
(for the eligibility test and the min-S_i term) plus one keyed by finish tag
(for SEFF selection) give O(log N) per enqueue/dequeue — the paper's claim
(c), demonstrated empirically by ``benchmarks/test_complexity_scaling.py``.

Hot-path engineering (none of it changes eq. 27/28-29 semantics — see
DESIGN.md "Hot-path architecture" and ``tests/test_equivalence_optimized``):

* busy-period tag resets are *lazy*: a per-scheduler epoch counter is
  bumped at the boundary and a flow's stale tags are zeroed on first read,
  so the boundary costs O(1) instead of O(N);
* ``1 / r_i`` is cached per flow (``FlowState.inv_rate``), invalidated by
  share/rate changes only;
* the dequeue path re-keys the served flow with single-sift heap
  operations (``update`` / ``replace_top``) instead of discard + push
  pairs.
"""

from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap
from repro.obs.events import VirtualTimeUpdate

__all__ = ["WF2QPlusScheduler"]


class WF2QPlusScheduler(PacketScheduler):
    """One-level WF2Q+ server: SEFF policy with the eq. (27) virtual time."""

    name = "WF2Q+"
    seff = True

    def __init__(self, rate):
        super().__init__(rate)
        self._virtual = 0
        #: Real time at which self._virtual was last brought up to date.
        self._virtual_stamp = 0
        self._eligible = IndexedHeap()    # backlogged flows, key = finish tag
        self._ineligible = IndexedHeap()  # backlogged flows, key = start tag
        #: min start tag over *all* backlogged flows needs both heaps; we
        #: track start tags for eligible flows in a third heap.
        self._starts = IndexedHeap()      # all backlogged flows, key = start tag

    # ------------------------------------------------------------------
    # Virtual time (eq. 27)
    # ------------------------------------------------------------------
    def virtual_time(self):
        """Current value of V (as of the last update instant)."""
        return self._virtual

    def system_virtual_time(self, now=None):
        return self._virtual

    def _advance_virtual(self, now, floor=True):
        """V(t + tau) = max(V + tau, min S_i) — evaluated lazily at events.

        The min-S arm only applies at *selection* instants (``floor=True``),
        mirroring the paper's pseudocode where V is updated in RESTART-NODE.
        Applying it at arrival instants would let V leap to the start tag of
        a lone backlogged session's queued packet, handing that session
        extra early service and inflating the WFI beyond Theorem 4.
        """
        tau = now - self._virtual_stamp
        v = self._virtual + tau
        if floor:
            starts = self._starts.entries
            if starts and starts[0][0] > v:
                v = starts[0][0]
        self._virtual = v
        self._virtual_stamp = now
        obs = self._obs
        if obs is not None:
            obs.emit(VirtualTimeUpdate(now, self.name, None, v))

    # ------------------------------------------------------------------
    # Tag bookkeeping
    # ------------------------------------------------------------------
    def _set_head_tags(self, state, was_flow_empty, now):
        """Apply eqs. (28)-(29) for the packet now at the head of ``state``."""
        head = state.head()
        if state.tag_epoch != self._tag_epoch:
            # Lazy busy-period reset: this flow's tags are stale leftovers
            # from a previous busy period (everything was served).
            state.start_tag = 0
            state.finish_tag = 0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._virtual)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length * self._inv_rate(state)
        self._register_head(state)

    def _register_head(self, state):
        flow_id = state.flow_id
        self._starts.push_or_update(flow_id, state.start_tag)
        if state.start_tag <= self._virtual:
            self._ineligible.discard(flow_id)
            self._eligible.push_or_update(
                flow_id, (state.finish_tag, state.index)
            )
        else:
            self._eligible.discard(flow_id)
            self._ineligible.push_or_update(
                flow_id, (state.start_tag, state.index)
            )

    def _promote_eligible(self):
        ineligible = self._ineligible
        ient = ineligible.entries
        if not ient:
            return
        eligible = self._eligible
        flows = self._flows
        virtual = self._virtual
        while ient and ient[0][0][0] <= virtual:
            state = flows[ient[0][2]]
            ineligible.move_top_to(
                eligible, (state.finish_tag, state.index)
            )

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if was_idle and now >= self._free_at:
            # New system busy period: V restarts at zero and stale finish
            # tags (everything was served) are cleared.  An arrival while
            # the last packet is still in transmission (now < _free_at)
            # belongs to the *same* busy period — tags must persist, or a
            # returning flow would jump ahead with a fresh S = 0 and break
            # the Theorem 4 WFI.  The per-flow clearing is lazy: bumping
            # the epoch invalidates every flow's tags in O(1); each flow
            # zeroes its own on the next read (_set_head_tags), so the
            # boundary no longer costs O(N).
            self._virtual = 0
            self._virtual_stamp = now
            self._tag_epoch += 1
            obs = self._obs
            if obs is not None:
                obs.emit(VirtualTimeUpdate(now, self.name, None, 0,
                                           reset=True))
        if was_flow_empty:
            self._advance_virtual(now, floor=False)
            self._set_head_tags(state, True, now)

    def _select_flow(self, now):
        self._advance_virtual(now)
        self._promote_eligible()
        # The min-S arm of eq. (27) guarantees the eligible heap is
        # non-empty whenever any flow is backlogged.
        flow_id = self._eligible.entries[0][2]
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        self._last_virtual_start = state.start_tag
        self._last_virtual_finish = state.finish_tag
        flow_id = state.flow_id
        eligible = self._eligible
        ent = eligible.entries
        if ent and ent[0][2] == flow_id:
            # Hot path: SEFF selection always serves the eligible top, so
            # the flow can be re-keyed in place with single-sift heap ops
            # instead of the discard x3 + push x2 pattern.  The served
            # flow's tags are fresh this epoch (they were set when its
            # head packet was tagged inside the current busy period).
            if state.queue:
                start = state.finish_tag          # eq. (28), Q != 0
                state.start_tag = start
                finish = start + state.queue[0].length * self._inv_rate(state)
                state.finish_tag = finish
                self._starts.update(flow_id, start)
                if start <= self._virtual:
                    eligible.replace_top(flow_id, (finish, state.index))
                else:
                    eligible.move_top_to(
                        self._ineligible, (start, state.index)
                    )
            else:
                eligible.pop()
                self._starts.remove(flow_id)
        else:
            # Ablation subclasses (no-SEFF / no-floor) may legitimately
            # serve a flow that is not the eligible top — or is in the
            # ineligible heap; fall back to the general bookkeeping.
            eligible.discard(flow_id)
            self._ineligible.discard(flow_id)
            self._starts.discard(flow_id)
            if state.queue:
                self._set_head_tags(state, False, now)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=state.start_tag,
            virtual_finish=state.finish_tag,
        )

    def _on_system_empty(self, now):
        # Busy period over; the reset happens lazily on the next enqueue.
        pass

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Start tags record service already owed and persist; each
        # backlogged head's finish tag is rebased to F = S + L / r_i'
        # under the new rates.  Eligibility (S vs V) is untouched, so only
        # the finish-keyed eligible heap needs re-keying; the ineligible
        # and start heaps are keyed by the unchanged S.
        eligible = self._eligible
        for state in self._flows.values():
            if not state.queue:
                continue
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            if state.flow_id in eligible.pos:
                eligible.update(state.flow_id, (finish, state.index))

    def _on_packet_evicted(self, state, packet, index, now):
        if index != 0:
            return  # only the head packet carries tags
        flow_id = state.flow_id
        if state.queue:
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            if flow_id in self._eligible.pos:
                self._eligible.update(flow_id, (finish, state.index))
            # _ineligible/_starts are keyed by the inherited start tag.
        else:
            state.finish_tag = state.start_tag
            self._eligible.discard(flow_id)
            self._ineligible.discard(flow_id)
            self._starts.discard(flow_id)

    def _snapshot_extra(self):
        return {
            "virtual": self._virtual,
            "virtual_stamp": self._virtual_stamp,
            "eligible": self._eligible.snapshot(),
            "ineligible": self._ineligible.snapshot(),
            "starts": self._starts.snapshot(),
        }

    def _restore_extra(self, extra, uid_map):
        self._virtual = extra["virtual"]
        self._virtual_stamp = extra["virtual_stamp"]
        self._eligible.restore(extra["eligible"])
        self._ineligible.restore(extra["ineligible"])
        self._starts.restore(extra["starts"])
