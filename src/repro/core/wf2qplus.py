"""WF2Q+ — the paper's primary contribution (Section 3.4).

WF2Q+ keeps WF2Q's *Smallest Eligible virtual Finish time First* (SEFF)
policy but replaces the O(N) exact GPS virtual time with the self-contained
system virtual time of eq. (27):

    V(t + tau) = max( V(t) + tau,  min over backlogged i of S_i )

where ``S_i`` is the virtual start tag of the packet at the head of session
i's queue.  The two properties that matter (both discussed in the paper):

* **minimum slope 1** (the ``V(t) + tau`` arm) — necessary and sufficient for
  delay bounds within one packet of GPS;
* **V >= min start tag** (the ``min S_i`` arm) — a newly backlogged session's
  start tag (``S = max(F_old, V)``) is then at least as large as some
  currently backlogged session's, which yields the N-independent WFI of
  Theorem 4, and it guarantees at least one eligible packet, i.e. work
  conservation.

Per-session (not per-packet) tags follow eqs. (28)-(29): when a packet
reaches the head of session i's queue,

    S_i = F_i                      if the queue was non-empty
    S_i = max(F_i, V(arrival))     if the session was idle
    F_i = S_i + L / r_i

Tags are in seconds of guaranteed service: ``r_i`` is the session's absolute
guaranteed rate ``share_i / total_share * link_rate``.

Complexity: one :class:`~repro.dstruct.heap.IndexedHeap` keyed by start tag
(for the eligibility test and the min-S_i term) plus one keyed by finish tag
(for SEFF selection) give O(log N) per enqueue/dequeue — the paper's claim
(c), demonstrated empirically by ``benchmarks/test_complexity_scaling.py``.

Hot-path engineering (none of it changes eq. 27/28-29 semantics — see
DESIGN.md "Hot-path architecture" and ``tests/test_equivalence_optimized``):

* busy-period tag resets are *lazy*: a per-scheduler epoch counter is
  bumped at the boundary and a flow's stale tags are zeroed on first read,
  so the boundary costs O(1) instead of O(N);
* ``1 / r_i`` is cached per flow (``FlowState.inv_rate``), invalidated by
  share/rate changes only;
* the dequeue path re-keys the served flow with single-sift heap
  operations (``update`` / ``replace_top``) instead of discard + push
  pairs.
"""

from repro.core.scheduler import (
    BATCH_KERNEL_MIN,
    PacketScheduler,
    ScheduledPacket,
    kernel_sized,
)
from repro.dstruct.heap import IndexedHeap
from repro.obs.events import VirtualTimeUpdate

__all__ = ["WF2QPlusScheduler"]


class WF2QPlusScheduler(PacketScheduler):
    """One-level WF2Q+ server: SEFF policy with the eq. (27) virtual time."""

    name = "WF2Q+"
    seff = True

    def __init__(self, rate):
        super().__init__(rate)
        self._virtual = 0
        #: Real time at which self._virtual was last brought up to date.
        self._virtual_stamp = 0
        self._eligible = IndexedHeap()    # backlogged flows, key = finish tag
        self._ineligible = IndexedHeap()  # backlogged flows, key = start tag
        #: min start tag over *all* backlogged flows needs both heaps; we
        #: track start tags for eligible flows in a third heap.
        self._starts = IndexedHeap()      # all backlogged flows, key = start tag

    # ------------------------------------------------------------------
    # Virtual time (eq. 27)
    # ------------------------------------------------------------------
    def virtual_time(self):
        """Current value of V (as of the last update instant)."""
        return self._virtual

    def system_virtual_time(self, now=None):
        return self._virtual

    def _advance_virtual(self, now, floor=True):
        """V(t + tau) = max(V + tau, min S_i) — evaluated lazily at events.

        The min-S arm only applies at *selection* instants (``floor=True``),
        mirroring the paper's pseudocode where V is updated in RESTART-NODE.
        Applying it at arrival instants would let V leap to the start tag of
        a lone backlogged session's queued packet, handing that session
        extra early service and inflating the WFI beyond Theorem 4.
        """
        tau = now - self._virtual_stamp
        v = self._virtual + tau
        if floor:
            starts = self._starts.entries
            if starts and starts[0][0] > v:
                v = starts[0][0]
        self._virtual = v
        self._virtual_stamp = now
        obs = self._obs
        if obs is not None:
            obs.emit(VirtualTimeUpdate(now, self.name, None, v))

    # ------------------------------------------------------------------
    # Tag bookkeeping
    # ------------------------------------------------------------------
    def _set_head_tags(self, state, was_flow_empty, now):
        """Apply eqs. (28)-(29) for the packet now at the head of ``state``."""
        head = state.head()
        if state.tag_epoch != self._tag_epoch:
            # Lazy busy-period reset: this flow's tags are stale leftovers
            # from a previous busy period (everything was served).
            state.start_tag = 0
            state.finish_tag = 0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._virtual)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length * self._inv_rate(state)
        self._register_head(state)

    def _register_head(self, state):
        flow_id = state.flow_id
        self._starts.push_or_update(flow_id, state.start_tag)
        if state.start_tag <= self._virtual:
            self._ineligible.discard(flow_id)
            self._eligible.push_or_update(
                flow_id, (state.finish_tag, state.index)
            )
        else:
            self._eligible.discard(flow_id)
            self._ineligible.push_or_update(
                flow_id, (state.start_tag, state.index)
            )

    def _promote_eligible(self):
        ineligible = self._ineligible
        ient = ineligible.entries
        if not ient:
            return
        eligible = self._eligible
        flows = self._flows
        virtual = self._virtual
        while ient and ient[0][0][0] <= virtual:
            state = flows[ient[0][2]]
            ineligible.move_top_to(
                eligible, (state.finish_tag, state.index)
            )

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if was_idle and now >= self._free_at:
            # New system busy period: V restarts at zero and stale finish
            # tags (everything was served) are cleared.  An arrival while
            # the last packet is still in transmission (now < _free_at)
            # belongs to the *same* busy period — tags must persist, or a
            # returning flow would jump ahead with a fresh S = 0 and break
            # the Theorem 4 WFI.  The per-flow clearing is lazy: bumping
            # the epoch invalidates every flow's tags in O(1); each flow
            # zeroes its own on the next read (_set_head_tags), so the
            # boundary no longer costs O(N).
            self._virtual = 0
            self._virtual_stamp = now
            self._tag_epoch += 1
            obs = self._obs
            if obs is not None:
                obs.emit(VirtualTimeUpdate(now, self.name, None, 0,
                                           reset=True))
        if was_flow_empty:
            self._advance_virtual(now, floor=False)
            self._set_head_tags(state, True, now)

    def _select_flow(self, now):
        self._advance_virtual(now)
        self._promote_eligible()
        # The min-S arm of eq. (27) guarantees the eligible heap is
        # non-empty whenever any flow is backlogged.
        flow_id = self._eligible.entries[0][2]
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        self._last_virtual_start = state.start_tag
        self._last_virtual_finish = state.finish_tag
        flow_id = state.flow_id
        eligible = self._eligible
        ent = eligible.entries
        if ent and ent[0][2] == flow_id:
            # Hot path: SEFF selection always serves the eligible top, so
            # the flow can be re-keyed in place with single-sift heap ops
            # instead of the discard x3 + push x2 pattern.  The served
            # flow's tags are fresh this epoch (they were set when its
            # head packet was tagged inside the current busy period).
            if state.queue:
                start = state.finish_tag          # eq. (28), Q != 0
                state.start_tag = start
                finish = start + state.queue[0].length * self._inv_rate(state)
                state.finish_tag = finish
                self._starts.update(flow_id, start)
                if start <= self._virtual:
                    eligible.replace_top(flow_id, (finish, state.index))
                else:
                    eligible.move_top_to(
                        self._ineligible, (start, state.index)
                    )
            else:
                eligible.pop()
                self._starts.remove(flow_id)
        else:
            # Ablation subclasses (no-SEFF / no-floor) may legitimately
            # serve a flow that is not the eligible top — or is in the
            # ineligible heap; fall back to the general bookkeeping.
            eligible.discard(flow_id)
            self._ineligible.discard(flow_id)
            self._starts.discard(flow_id)
            if state.queue:
                self._set_head_tags(state, False, now)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=state.start_tag,
            virtual_finish=state.finish_tag,
        )

    def _on_system_empty(self, now):
        # Busy period over; the reset happens lazily on the next enqueue.
        pass

    # ------------------------------------------------------------------
    # Batch operations (amortized chunk kernels)
    # ------------------------------------------------------------------
    def enqueue_batch(self, packets, now=None):
        # The passive kernel's contract holds because _on_enqueue does
        # nothing for a packet joining a non-empty queue; the method-
        # identity check keeps a subclass overriding _on_enqueue honest
        # while letting the ablation variants (which only change
        # selection) inherit the fast path.
        if (self._obs is None and not self._buffer_limits
                and self._shared_limit is None
                and type(self)._on_enqueue is WF2QPlusScheduler._on_enqueue
                and kernel_sized(packets)):
            return self._enqueue_batch_passive(packets, now)
        return PacketScheduler.enqueue_batch(self, packets, now)

    def dequeue_batch(self, n, now=None):
        if (type(self) is WF2QPlusScheduler and self._obs is None
                and n >= BATCH_KERNEL_MIN):
            return self._dequeue_chunk(n, None, now, [])
        return PacketScheduler.dequeue_batch(self, n, now)

    def drain_until(self, limit, now=None, into=None):
        if type(self) is WF2QPlusScheduler and self._obs is None:
            return self._dequeue_chunk(
                self.drain_chunk, limit, now, [] if into is None else into)
        return PacketScheduler.drain_until(self, limit, now, into)

    def _dequeue_chunk(self, n, limit, now, records):
        """Amortized dequeue loop: hoisted heaps/counters, inline eq. (27)
        advance and single-sift re-keying, zero per-packet dispatch.

        Packet-for-packet identical to repeated :meth:`dequeue` calls (the
        arithmetic is the same expression sequence on the same operands —
        exact under ``Fraction``); callers gate on exact type and no
        observer, so no hook or event site is bypassed.  ``n=None`` means
        unbounded; ``limit`` follows :meth:`PacketScheduler.drain_until`
        (the crossing packet is included).  Appends into ``records`` as it
        goes so partially drained work survives an exception.
        """
        backlog = self._backlog_packets
        if backlog == 0 or (n is not None and n <= 0):
            self._count_batch(0)
            return records
        clock = self._clock
        if now is None:
            now = clock if clock > self._free_at else self._free_at
        elif now < clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {clock!r}"
            )
        if n is None:
            n = backlog
        flows = self._flows
        backlogged = self._backlogged
        rate = self._rate
        total_share = self._total_share
        gen = self._share_gen
        eligible = self._eligible
        ineligible = self._ineligible
        starts = self._starts
        eent = eligible.entries
        ient = ineligible.entries
        sent = starts.entries
        replace_top = eligible.replace_top
        demote = eligible.move_top_to
        promote = ineligible.move_top_to
        starts_update = starts.update
        virtual = self._virtual
        stamp = self._virtual_stamp
        backlog_bits = self._backlog_bits
        append = records.append
        count = 0
        start_tag = finish_tag = None
        try:
            while count < n and backlog:
                # eq. (27): V = max(V + tau, min S_i), floored at selection.
                v = virtual + (now - stamp)
                if sent and sent[0][0] > v:
                    v = sent[0][0]
                virtual = v
                stamp = now
                while ient and ient[0][0][0] <= v:
                    st = flows[ient[0][2]]
                    promote(eligible, (st.finish_tag, st.index))
                flow_id = eent[0][2]
                state = flows[flow_id]
                queue = state.queue
                packet = queue.popleft()
                length = packet.length
                state.bits_queued -= length
                backlog -= 1
                backlog_bits -= length
                finish = now + length / rate
                start_tag = state.start_tag
                finish_tag = state.finish_tag
                append(ScheduledPacket(packet, now, finish,
                                       start_tag, finish_tag))
                if queue:
                    start = finish_tag  # eq. (28), Q != 0
                    state.start_tag = start
                    if state.rate_gen != gen:
                        state.inv_rate = 1 / (
                            state.config.share / total_share * rate
                        )
                        state.rate_gen = gen
                    fin = start + queue[0].length * state.inv_rate
                    state.finish_tag = fin
                    starts_update(flow_id, start)
                    if start <= virtual:
                        replace_top(flow_id, (fin, state.index))
                    else:
                        demote(ineligible, (start, state.index))
                else:
                    eligible.pop()
                    starts.remove(flow_id)
                    del backlogged[flow_id]
                count += 1
                clock = now
                now = finish
                if limit is not None and finish >= limit:
                    break
        finally:
            self._clock = clock
            self._free_at = now if count else self._free_at
            self._virtual = virtual
            self._virtual_stamp = stamp
            self._backlog_packets = backlog
            self._backlog_bits = backlog_bits
            self._dequeues += count
            if count:
                self._last_virtual_start = start_tag
                self._last_virtual_finish = finish_tag
            self._count_batch(count)
        return records

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Start tags record service already owed and persist; each
        # backlogged head's finish tag is rebased to F = S + L / r_i'
        # under the new rates.  Eligibility (S vs V) is untouched, so only
        # the finish-keyed eligible heap needs re-keying; the ineligible
        # and start heaps are keyed by the unchanged S.
        eligible = self._eligible
        for state in self._flows.values():
            if not state.queue:
                continue
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            if state.flow_id in eligible.pos:
                eligible.update(state.flow_id, (finish, state.index))

    def _evictable_idle(self, state, now):
        """An idle WF2Q+ flow's state is dead weight once its tags can no
        longer influence eq. (28)'s ``S = max(F, V)``.

        Two provably safe cases:

        * the tag epoch is stale — the lazy busy-period reset would zero
          the tags on the next read anyway, exactly what a revived state
          carries;
        * ``F <= V``: V is non-decreasing within a busy-period epoch, so
          at any later arrival ``max(F, V) = V = max(0, V)`` — the revived
          zero-tag state produces the identical start tag.  ``_virtual``
          at its stamp is a valid lower bound for every future V in this
          epoch (the clock may lag the stamp after a chunked drain, so the
          elapsed-time term is only added when non-negative).

        An idle flow sits in none of the three heaps (they hold only
        backlogged flows), so no heap surgery is needed.
        """
        if state.tag_epoch != self._tag_epoch:
            return True
        v = self._virtual
        tau = now - self._virtual_stamp
        if tau > 0:
            v = v + tau
        return state.finish_tag <= v

    def _on_packet_evicted(self, state, packet, index, now):
        if index != 0:
            return  # only the head packet carries tags
        flow_id = state.flow_id
        if state.queue:
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            if flow_id in self._eligible.pos:
                self._eligible.update(flow_id, (finish, state.index))
            # _ineligible/_starts are keyed by the inherited start tag.
        else:
            state.finish_tag = state.start_tag
            self._eligible.discard(flow_id)
            self._ineligible.discard(flow_id)
            self._starts.discard(flow_id)

    def _snapshot_extra(self):
        return {
            "virtual": self._virtual,
            "virtual_stamp": self._virtual_stamp,
            "eligible": self._eligible.snapshot(),
            "ineligible": self._ineligible.snapshot(),
            "starts": self._starts.snapshot(),
        }

    def _restore_extra(self, extra, uid_map):
        self._virtual = extra["virtual"]
        self._virtual_stamp = extra["virtual_stamp"]
        self._eligible.restore(extra["eligible"])
        self._ineligible.restore(extra["ineligible"])
        self._starts.restore(extra["starts"])
