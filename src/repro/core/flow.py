"""Flow (session) configuration and the leaky bucket regulator.

A *flow* in this library corresponds to a *session* in the paper: a stream
of packets with a guaranteed service share phi (equivalently a guaranteed
rate ``r_i = phi_i * r``).  :class:`FlowConfig` is the immutable description
handed to a scheduler when the flow is registered.

:class:`LeakyBucket` implements the (sigma, rho) regulator of eq. (17):
``A_i(t1, t2) <= sigma + rho * (t2 - t1)``.  It can be used either as a
*shaper* (compute when a packet conforms) or as a *policer* (test
conformance), and is the traffic model under which the paper's delay bounds
(Lemma 1, Corollaries 1-2) hold.
"""

from repro.errors import ConfigurationError

__all__ = ["FlowConfig", "LeakyBucket"]


class FlowConfig:
    """Static description of a flow registered with a scheduler.

    Parameters
    ----------
    flow_id:
        Hashable identifier, unique within one scheduler.
    share:
        The service share phi_i > 0.  Shares need not sum to one: schedulers
        normalise internally where the theory requires it (a flow's
        guaranteed rate is ``share / sum(shares) * link_rate`` when shares
        are not normalised, or ``share * link_rate`` when they are).
    name:
        Optional human-readable label for reports.
    """

    __slots__ = ("flow_id", "share", "name")

    def __init__(self, flow_id, share, name=None):
        if share <= 0:
            raise ConfigurationError(
                f"flow {flow_id!r}: share must be positive, got {share!r}"
            )
        self.flow_id = flow_id
        self.share = share
        self.name = name if name is not None else str(flow_id)

    def __repr__(self):
        return f"FlowConfig({self.flow_id!r}, share={self.share!r})"


class LeakyBucket:
    """A (sigma, rho) leaky bucket: burst ``sigma`` bits, rate ``rho`` bps.

    The bucket starts full (``sigma`` tokens), matching the paper's
    constraint that A(t1, t2) <= sigma + rho (t2 - t1) for *all* intervals.

    Use :meth:`conforms` to police and :meth:`earliest_conforming_time` /
    :meth:`consume` to shape.
    """

    __slots__ = ("sigma", "rho", "_tokens", "_last_time")

    def __init__(self, sigma, rho):
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma!r}")
        if rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {rho!r}")
        self.sigma = sigma
        self.rho = rho
        self._tokens = sigma
        self._last_time = 0

    def _refill(self, now):
        if now < self._last_time:
            raise ValueError(
                f"time moved backwards: {now!r} < {self._last_time!r}"
            )
        self._tokens = min(self.sigma, self._tokens + self.rho * (now - self._last_time))
        self._last_time = now

    def tokens_at(self, now):
        """Tokens available at time ``now`` without mutating state."""
        if now < self._last_time:
            raise ValueError(
                f"time moved backwards: {now!r} < {self._last_time!r}"
            )
        return min(self.sigma, self._tokens + self.rho * (now - self._last_time))

    def conforms(self, length, now):
        """Would a ``length``-bit packet at time ``now`` conform?"""
        return self.tokens_at(now) >= length

    def earliest_conforming_time(self, length, now):
        """Earliest time >= ``now`` at which a ``length``-bit packet conforms.

        Raises :class:`~repro.errors.ConfigurationError` if the packet can
        never conform (``length > sigma``).
        """
        if length > self.sigma:
            raise ConfigurationError(
                f"packet of {length!r} bits exceeds bucket depth {self.sigma!r}"
            )
        available = self.tokens_at(now)
        if available >= length:
            return now
        return now + (length - available) / self.rho

    def consume(self, length, now):
        """Withdraw ``length`` tokens at time ``now`` (shaping).

        Raises ValueError if the packet does not conform; call
        :meth:`earliest_conforming_time` first when shaping.  A sub-ULP
        deficit (float rounding at exactly the earliest conforming instant)
        is forgiven; exact types like Fraction are unaffected.
        """
        self._refill(now)
        deficit = length - self._tokens
        if deficit > 0:
            if deficit > 1e-9 * length:
                raise ValueError(
                    f"non-conforming packet: {length!r} bits, "
                    f"{self._tokens!r} tokens at t={now!r}"
                )
            self._tokens = length  # forgive the rounding residue
        self._tokens -= length

    def envelope(self, interval):
        """Maximum bits admissible over an interval of the given duration."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        return self.sigma + self.rho * interval

    def __repr__(self):
        return f"LeakyBucket(sigma={self.sigma!r}, rho={self.rho!r})"
