"""Columnar flow state and the vectorized float64 WF2Q+ backend.

The exact schedulers keep tags on per-flow ``FlowState`` objects — perfect
for ``Fraction`` arithmetic and checkpointing, but every tag update pays an
attribute chase.  This module stores the hot per-flow quantities (start tag,
finish tag, inverse guaranteed rate, queued bits) in parallel ``array('d')``
columns keyed by the dense ``FlowState.index`` (the same dense-id flattening
the PR 3 hierarchy uses for nodes), and builds
:class:`VectorWF2QPlus` — a float64 WF2Q+ behind the unchanged
:class:`~repro.core.scheduler.PacketScheduler` contract — on top of them.

Numerics contract (pinned by ``tests/test_batch.py``):

* For float workloads (float link rate, int/float packet lengths and
  shares) the backend is **bit-equivalent** to
  :class:`~repro.core.wf2qplus.WF2QPlusScheduler`: every tag is produced by
  the same IEEE-754 expression sequence on the same operands, so service
  order, tags and finish times match exactly.
* For ``Fraction`` workloads it is **float-approximate**: inputs are
  coerced to float64 at the column boundary, so tags carry rounding error
  and service order may diverge where exact tags tie or differ by less
  than an ulp.  Use the exact scheduler when the run must be
  Fraction-faithful (checkpoint digests, the differential suites).

The ``FlowState`` objects remain the source of truth for checkpoint and
rebasing: :meth:`VectorWF2QPlus.flush_tags` writes the columns back before
every snapshot, and restore re-syncs the columns from the restored states.

numpy is optional.  When importable, bulk operations (reconfiguration
inverse-rate recomputation, same-instant chunk tagging) run on zero-copy
``np.frombuffer`` views of the columns once the chunk is large enough to
amortize the call overhead; without numpy the same loops run on the plain
``array`` objects.  Nothing is imported at module load that the container
may lack.
"""

from array import array

from repro.core.scheduler import (
    BATCH_KERNEL_MIN,
    PacketScheduler,
    ScheduledPacket,
    kernel_sized,
)
from repro.dstruct.heap import IndexedHeap

try:
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    _np = None
    HAVE_NUMPY = False

__all__ = ["FlowColumns", "VectorWF2QPlus", "HAVE_NUMPY", "NUMPY_MIN_CHUNK",
           "numpy_version"]

_INF = float("inf")


def numpy_version():
    """numpy's version string, or None on numpy-less hosts.

    Bench payloads record this next to the Python version: whether the
    columnar kernels ran their numpy or pure-``array`` lanes is part of
    a measurement's provenance, and baselines should only be compared
    within one lane.
    """
    return _np.__version__ if HAVE_NUMPY else None

#: Below this many elements the plain-Python loop beats the numpy call
#: overhead (ufunc dispatch + view creation), measured on the bench host.
NUMPY_MIN_CHUNK = 16


class FlowColumns:
    """Parallel float64 columns for per-flow scheduler state.

    One slot per dense flow index.  ``start`` / ``finish`` are the virtual
    tags, ``inv_rate`` the cached ``1 / r_i`` (NaN-free: slots are always
    written before read), ``share`` the configured share (kept so the
    reconfiguration sweep can recompute every inverse rate in one
    vectorized expression), and ``bits`` the queued bits.  Removed flows
    leave gaps; indices are monotone, so columns only ever grow.
    """

    __slots__ = ("start", "finish", "inv_rate", "share", "bits", "size")

    def __init__(self):
        self.start = array("d")
        self.finish = array("d")
        self.inv_rate = array("d")
        self.share = array("d")
        self.bits = array("d")
        self.size = 0

    def ensure(self, index):
        """Grow every column to cover ``index`` (zero-filled)."""
        need = index + 1 - self.size
        if need > 0:
            pad = array("d", bytes(8 * need))
            for name in ("start", "finish", "inv_rate", "share", "bits"):
                getattr(self, name).extend(pad)
            self.size += need

    def view(self, name):
        """Zero-copy numpy view of one column (requires numpy)."""
        return _np.frombuffer(getattr(self, name), dtype=_np.float64)

    def sync_from_states(self, flows):
        """Load tags/shares/bits from ``FlowState`` objects (restore path)."""
        start, finish = self.start, self.finish
        share, bits = self.share, self.bits
        for state in flows.values():
            i = state.index
            self.ensure(i)
            start[i] = state.start_tag
            finish[i] = state.finish_tag
            share[i] = state.config.share
            bits[i] = state.bits_queued

    def flush_to_states(self, flows):
        """Write tags back onto ``FlowState`` objects (checkpoint path).

        ``bits_queued`` is not written back: the base scheduler maintains
        it on the state exactly; the column is the scheduler's shadow.
        """
        start, finish = self.start, self.finish
        for state in flows.values():
            i = state.index
            state.start_tag = start[i]
            state.finish_tag = finish[i]


class VectorWF2QPlus(PacketScheduler):
    """WF2Q+ on float64 columns: the opt-in vectorized backend.

    Same eq. (27)-(29) algorithm, same heaps and tie-breaks as
    :class:`~repro.core.wf2qplus.WF2QPlusScheduler`; tags live in
    :class:`FlowColumns` instead of on the ``FlowState`` objects, and the
    batch APIs tag same-instant chunks with numpy when available.  The
    link rate is coerced to float at construction — this backend is
    float64 by definition (see the module docstring for the exact
    bit-equivalence contract).
    """

    name = "VectorWF2Q+"
    seff = True

    def __init__(self, rate):
        super().__init__(float(rate))
        self._virtual = 0.0
        #: Real time at which self._virtual was last brought up to date.
        self._virtual_stamp = 0.0
        self._cols = FlowColumns()
        self._eligible = IndexedHeap()    # backlogged flows, key (F, index)
        self._ineligible = IndexedHeap()  # backlogged flows, key (S, index)
        self._starts = IndexedHeap()      # all backlogged flows, key S
        #: Column-cache generation (mirrors FlowState.rate_gen for slots).
        self._col_gen = array("l")

    # ------------------------------------------------------------------
    # Column plumbing
    # ------------------------------------------------------------------
    def _on_flow_added(self, state):
        cols = self._cols
        cols.ensure(state.index)
        cols.share[state.index] = float(state.config.share)
        gens = self._col_gen
        while len(gens) <= state.index:
            gens.append(-1)
        gens[state.index] = -1

    def _inv(self, index):
        """Cached float64 ``1 / r_i`` for column slot ``index``."""
        gen = self._share_gen
        gens = self._col_gen
        if gens[index] != gen:
            cols = self._cols
            cols.inv_rate[index] = 1 / (
                cols.share[index] / self._total_share * self._rate
            )
            gens[index] = gen
        return self._cols.inv_rate[index]

    def flush_tags(self):
        """Write column tags back to the ``FlowState`` objects.

        Called before every snapshot (and usable by analysis code that
        reads ``FlowState.start_tag`` directly); the columns stay the
        working store.
        """
        self._cols.flush_to_states(self._flows)

    def virtual_time(self):
        return self._virtual

    def system_virtual_time(self, now=None):
        return self._virtual

    # ------------------------------------------------------------------
    # Per-packet hooks (scalar column operations)
    # ------------------------------------------------------------------
    def _advance_virtual(self, now, floor=True):
        v = self._virtual + (now - self._virtual_stamp)
        if floor:
            sent = self._starts.entries
            if sent and sent[0][0] > v:
                v = sent[0][0]
        self._virtual = v
        self._virtual_stamp = now

    def _set_head_tags(self, state, was_flow_empty, now):
        cols = self._cols
        i = state.index
        if state.tag_epoch != self._tag_epoch:
            cols.start[i] = 0.0  # lazy busy-period reset
            cols.finish[i] = 0.0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            start = cols.finish[i]
            if self._virtual > start:
                start = self._virtual
        else:
            start = cols.finish[i]
        cols.start[i] = start
        finish = start + state.queue[0].length * self._inv(i)
        cols.finish[i] = finish
        flow_id = state.flow_id
        self._starts.push_or_update(flow_id, start)
        if start <= self._virtual:
            self._ineligible.discard(flow_id)
            self._eligible.push_or_update(flow_id, (finish, i))
        else:
            self._eligible.discard(flow_id)
            self._ineligible.push_or_update(flow_id, (start, i))

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if was_idle and now >= self._free_at:
            self._virtual = 0.0
            self._virtual_stamp = now
            self._tag_epoch += 1
        if was_flow_empty:
            self._advance_virtual(now, floor=False)
            self._set_head_tags(state, True, now)
        self._cols.bits[state.index] = state.bits_queued

    def _promote_eligible(self):
        ineligible = self._ineligible
        ient = ineligible.entries
        if not ient:
            return
        eligible = self._eligible
        flows = self._flows
        finish = self._cols.finish
        virtual = self._virtual
        while ient and ient[0][0][0] <= virtual:
            state = flows[ient[0][2]]
            ineligible.move_top_to(
                eligible, (finish[state.index], state.index)
            )

    def _select_flow(self, now):
        self._advance_virtual(now)
        self._promote_eligible()
        return self._flows[self._eligible.entries[0][2]]

    def _on_dequeued(self, state, packet, now):
        cols = self._cols
        i = state.index
        flow_id = state.flow_id
        cols.bits[i] = state.bits_queued
        eligible = self._eligible
        ent = eligible.entries
        if ent and ent[0][2] == flow_id:
            if state.queue:
                start = cols.finish[i]  # eq. (28), Q != 0
                cols.start[i] = start
                finish = start + state.queue[0].length * self._inv(i)
                cols.finish[i] = finish
                self._starts.update(flow_id, start)
                if start <= self._virtual:
                    eligible.replace_top(flow_id, (finish, i))
                else:
                    eligible.move_top_to(self._ineligible, (start, i))
            else:
                eligible.pop()
                self._starts.remove(flow_id)
        else:  # pragma: no cover - subclass selection policies
            eligible.discard(flow_id)
            self._ineligible.discard(flow_id)
            self._starts.discard(flow_id)
            if state.queue:
                self._set_head_tags(state, False, now)

    def _make_record(self, state, packet, now, finish):
        i = state.index
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=self._cols.start[i],
            virtual_finish=self._cols.finish[i],
        )

    # ------------------------------------------------------------------
    # Batch operations
    # ------------------------------------------------------------------
    def enqueue_batch(self, packets, now=None):
        if (self._obs is not None or self._buffer_limits
                or self._shared_limit is not None
                or type(self)._on_enqueue is not VectorWF2QPlus._on_enqueue
                or not kernel_sized(packets)):
            return PacketScheduler.enqueue_batch(self, packets, now)
        # Amortized loop: packets joining a non-empty queue inline to an
        # append; newly backlogged flows are collected per arrival instant
        # and tagged as a group — vectorized with numpy when the group is
        # big enough.  Deferring the group's heap pushes to the group
        # flush is service-order neutral: no selection can run inside an
        # enqueue_batch, and at the next dequeue eq. (27) promotes by the
        # then-current V, which is exactly the classification the flush
        # applies.
        flows = self._flows
        cols = self._cols
        col_bits = cols.bits
        backlogged = self._backlogged
        clock = self._clock
        backlog = self._backlog_packets
        backlog_bits = self._backlog_bits
        arrivals = enqueues = 0
        accepted = 0
        enqueue = self.enqueue
        pending = []  # newly backlogged (state, length) at pending_t
        pending_t = None
        for packet in packets:
            t = packet.arrival_time if now is None else now
            if t is None:
                t = clock
            state = flows.get(packet.flow_id)
            length = packet.length
            if (state is None or t < clock
                    or (length <= 0 if type(length) is int
                        else type(length) is not float
                        or not 0.0 < length < _INF)):
                if pending:
                    self._flush_pending(pending, pending_t)
                    pending = []
                self._clock = clock
                self._arrivals += arrivals
                self._enqueues += enqueues
                self._backlog_packets = backlog
                self._backlog_bits = backlog_bits
                arrivals = enqueues = 0
                if enqueue(packet, t):
                    accepted += 1
                clock = self._clock
                backlog = self._backlog_packets
                backlog_bits = self._backlog_bits
                continue
            queue = state.queue
            if not queue:
                # Newly backlogged: bill the arrival now, tag with its
                # same-instant group.  A system-idle boundary can only be
                # the batch's first packet (afterwards backlog > 0), and
                # group members never see it, so the V reset stays here.
                if backlog == 0 and t >= self._free_at:
                    # New busy period (when idle with t < _free_at the
                    # last transmission still runs: _free_at = max(...,t)
                    # is a no-op and tags persist).
                    self._free_at = t
                    self._virtual = 0.0
                    self._virtual_stamp = t
                    self._tag_epoch += 1
                if t != pending_t and pending:
                    self._flush_pending(pending, pending_t)
                    pending = []
                pending_t = t
                pending.append((state, length))
                backlogged[packet.flow_id] = True
            if packet.arrival_time is None:
                packet.arrival_time = t
            clock = t
            arrivals += 1
            queue.append(packet)
            state.bits_queued += length
            col_bits[state.index] = state.bits_queued
            backlog += 1
            backlog_bits += length
            enqueues += 1
            accepted += 1
        if pending:
            self._flush_pending(pending, pending_t)
        self._clock = clock
        self._arrivals += arrivals
        self._enqueues += enqueues
        self._backlog_packets = backlog
        self._backlog_bits = backlog_bits
        self._count_batch(accepted)
        return accepted

    def _flush_pending(self, pending, t):
        """Tag a group of newly backlogged flows that share arrival time ``t``.

        Exactly ``_advance_virtual(t, floor=False)`` followed by
        ``_set_head_tags(state, True, t)`` per flow: after the first
        member advances V, the rest see tau = 0, so one advance covers the
        group and ``S = max(F, V)`` / ``F = S + L / r`` vectorize over the
        group's column slots.  The numpy path computes the same IEEE-754
        expressions elementwise, so it is bit-identical to the scalar
        loop.
        """
        self._advance_virtual(t, floor=False)
        virtual = self._virtual
        cols = self._cols
        col_start, col_finish = cols.start, cols.finish
        epoch = self._tag_epoch
        starts_push = self._starts.push_or_update
        eligible_push = self._eligible.push_or_update
        ineligible_push = self._ineligible.push_or_update
        if HAVE_NUMPY and len(pending) >= NUMPY_MIN_CHUNK:
            idx = _np.fromiter(
                (s.index for s, _ in pending), dtype=_np.intp,
                count=len(pending))
            lengths = _np.fromiter(
                (float(ln) for _, ln in pending), dtype=_np.float64,
                count=len(pending))
            vf = cols.view("finish")
            old_finish = vf[idx]
            stale = _np.fromiter(
                (s.tag_epoch != epoch for s, _ in pending), dtype=bool,
                count=len(pending))
            if stale.any():
                old_finish = _np.where(stale, 0.0, old_finish)
            start = _np.maximum(old_finish, virtual)
            inv = _np.fromiter(
                (self._inv(s.index) for s, _ in pending), dtype=_np.float64,
                count=len(pending))
            finish = start + lengths * inv
            vs = cols.view("start")
            vs[idx] = start
            vf[idx] = finish
            for k, (state, _) in enumerate(pending):
                state.tag_epoch = epoch
                flow_id = state.flow_id
                i = state.index
                # float() keeps heap keys plain Python floats (np.float64
                # compares bit-identically but would leak into snapshots).
                s = float(start[k])
                starts_push(flow_id, s)
                if s <= virtual:
                    eligible_push(flow_id, (float(finish[k]), i))
                else:
                    ineligible_push(flow_id, (s, i))
            return
        for state, length in pending:
            i = state.index
            if state.tag_epoch != epoch:
                col_finish[i] = 0.0
                state.tag_epoch = epoch
            start = col_finish[i]
            if virtual > start:
                start = virtual
            col_start[i] = start
            finish = start + length * self._inv(i)
            col_finish[i] = finish
            flow_id = state.flow_id
            starts_push(flow_id, start)
            if start <= virtual:
                eligible_push(flow_id, (finish, i))
            else:
                ineligible_push(flow_id, (start, i))

    def dequeue_batch(self, n, now=None):
        # Re-evaluated on *every* call (like the enqueue guard above): an
        # observer or buffer cap attached mid-run must disengage the
        # columnar kernel from the next batch onward, and drop-policy
        # evictions mutate FlowState tags behind the columns' back.
        if (type(self) is VectorWF2QPlus and self._obs is None
                and not self._buffer_limits and self._shared_limit is None
                and n >= BATCH_KERNEL_MIN):
            return self._dequeue_chunk(n, None, now, [])
        return PacketScheduler.dequeue_batch(self, n, now)

    def drain_until(self, limit, now=None, into=None):
        if (type(self) is VectorWF2QPlus and self._obs is None
                and not self._buffer_limits and self._shared_limit is None):
            return self._dequeue_chunk(
                self.drain_chunk, limit, now, [] if into is None else into)
        return PacketScheduler.drain_until(self, limit, now, into)

    def _dequeue_chunk(self, n, limit, now, records):
        """Columnar amortized dequeue; shared contract as
        :meth:`repro.core.wf2qplus.WF2QPlusScheduler._dequeue_chunk`.
        """
        backlog = self._backlog_packets
        if backlog == 0 or (n is not None and n <= 0):
            self._count_batch(0)
            return records
        clock = self._clock
        if now is None:
            now = clock if clock > self._free_at else self._free_at
        elif now < clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {clock!r}"
            )
        if n is None:
            n = backlog
        flows = self._flows
        backlogged = self._backlogged
        rate = self._rate
        total_share = self._total_share
        gen = self._share_gen
        gens = self._col_gen
        cols = self._cols
        col_start, col_finish = cols.start, cols.finish
        col_inv, col_share, col_bits = cols.inv_rate, cols.share, cols.bits
        eligible = self._eligible
        ineligible = self._ineligible
        starts = self._starts
        eent = eligible.entries
        ient = ineligible.entries
        sent = starts.entries
        replace_top = eligible.replace_top
        demote = eligible.move_top_to
        promote = ineligible.move_top_to
        starts_update = starts.update
        virtual = self._virtual
        stamp = self._virtual_stamp
        backlog_bits = self._backlog_bits
        append = records.append
        count = 0
        try:
            while count < n and backlog:
                # eq. (27): V = max(V + tau, min S_i), floored at selection.
                v = virtual + (now - stamp)
                if sent and sent[0][0] > v:
                    v = sent[0][0]
                virtual = v
                stamp = now
                while ient and ient[0][0][0] <= v:
                    st = flows[ient[0][2]]
                    promote(eligible, (col_finish[st.index], st.index))
                flow_id = eent[0][2]
                state = flows[flow_id]
                queue = state.queue
                packet = queue.popleft()
                length = packet.length
                state.bits_queued -= length
                i = state.index
                col_bits[i] = state.bits_queued
                backlog -= 1
                backlog_bits -= length
                finish = now + length / rate
                append(ScheduledPacket(packet, now, finish,
                                       col_start[i], col_finish[i]))
                if queue:
                    start = col_finish[i]  # eq. (28), Q != 0
                    col_start[i] = start
                    if gens[i] != gen:
                        col_inv[i] = 1 / (
                            col_share[i] / total_share * rate
                        )
                        gens[i] = gen
                    fin = start + queue[0].length * col_inv[i]
                    col_finish[i] = fin
                    starts_update(flow_id, start)
                    if start <= virtual:
                        replace_top(flow_id, (fin, i))
                    else:
                        demote(ineligible, (start, i))
                else:
                    eligible.pop()
                    starts.remove(flow_id)
                    del backlogged[flow_id]
                count += 1
                clock = now
                now = finish
                if limit is not None and finish >= limit:
                    break
        finally:
            self._clock = clock
            self._free_at = now if count else self._free_at
            self._virtual = virtual
            self._virtual_stamp = stamp
            self._backlog_packets = backlog
            self._backlog_bits = backlog_bits
            self._dequeues += count
            self._count_batch(count)
        return records

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Rebase every backlogged head's finish tag F = S + L / r_i' and
        # re-key the finish-ordered eligible heap; start tags persist.
        # With numpy and enough registered flows the inverse-rate column
        # refreshes in one vectorized expression (same op order as the
        # scalar path: 1 / (share / total * rate), so bit-identical).
        gen = self._share_gen
        gens = self._col_gen
        cols = self._cols
        flows = self._flows
        if HAVE_NUMPY and len(flows) >= NUMPY_MIN_CHUNK:
            idx = _np.fromiter(
                (s.index for s in flows.values()), dtype=_np.intp,
                count=len(flows))
            vshare = cols.view("share")
            vinv = cols.view("inv_rate")
            vinv[idx] = 1.0 / (
                vshare[idx] / self._total_share * self._rate
            )
            for state in flows.values():
                gens[state.index] = gen
        eligible = self._eligible
        col_start, col_finish = cols.start, cols.finish
        for state in flows.values():
            if not state.queue:
                continue
            i = state.index
            finish = col_start[i] + state.queue[0].length * self._inv(i)
            col_finish[i] = finish
            if state.flow_id in eligible.pos:
                eligible.update(state.flow_id, (finish, i))

    def set_share(self, flow_id, share):
        state = self._flows.get(flow_id)
        if state is not None:
            self._cols.share[state.index] = float(share)
        PacketScheduler.set_share(self, flow_id, share)

    def _on_packet_evicted(self, state, packet, index, now):
        cols = self._cols
        i = state.index
        cols.bits[i] = state.bits_queued
        if index != 0:
            return  # only the head packet carries tags
        flow_id = state.flow_id
        if state.queue:
            finish = cols.start[i] + state.queue[0].length * self._inv(i)
            cols.finish[i] = finish
            if flow_id in self._eligible.pos:
                self._eligible.update(flow_id, (finish, i))
        else:
            cols.finish[i] = cols.start[i]
            self._eligible.discard(flow_id)
            self._ineligible.discard(flow_id)
            self._starts.discard(flow_id)

    def snapshot(self):
        # FlowState objects are the checkpoint truth: push the working
        # columns back before the base snapshot reads the per-flow tags.
        self.flush_tags()
        return PacketScheduler.snapshot(self)

    def _snapshot_extra(self):
        return {
            "virtual": self._virtual,
            "virtual_stamp": self._virtual_stamp,
            "eligible": self._eligible.snapshot(),
            "ineligible": self._ineligible.snapshot(),
            "starts": self._starts.snapshot(),
        }

    def _restore_extra(self, extra, uid_map):
        self._virtual = extra["virtual"]
        self._virtual_stamp = extra["virtual_stamp"]
        self._eligible.restore(extra["eligible"])
        self._ineligible.restore(extra["ineligible"])
        self._starts.restore(extra["starts"])
        self._cols.sync_from_states(self._flows)
        gens = self._col_gen
        for k in range(len(gens)):
            gens[k] = -1  # force inverse-rate recomputation
