"""Core scheduling algorithms.

One-level Packet Fair Queueing (PFQ) servers:

* :class:`~repro.core.gps.GPSFluidSystem` — the fluid Generalized Processor
  Sharing reference (not realisable; used as ground truth).
* :class:`~repro.core.wfq.WFQScheduler` — Weighted Fair Queueing / PGPS
  (Smallest virtual Finish time First over exact GPS tags).
* :class:`~repro.core.wf2q.WF2QScheduler` — Worst-case Fair WFQ (SEFF over
  exact GPS tags).
* :class:`~repro.core.wf2qplus.WF2QPlusScheduler` — **the paper's
  contribution**: SEFF with the eq. (27) virtual time; O(log N).
* :class:`~repro.core.batch.VectorWF2QPlus` — opt-in float64 columnar
  WF2Q+ backend (numpy-accelerated batch tagging when available).
* :class:`~repro.core.scfq.SCFQScheduler` — Self-Clocked Fair Queueing.
* :class:`~repro.core.sfq.SFQScheduler` — Start-time Fair Queueing.
* :class:`~repro.core.drr.DRRScheduler` — Deficit Round Robin.
* :class:`~repro.core.fifo.FIFOScheduler` — first-in first-out baseline.

Hierarchical servers:

* :class:`~repro.core.hierarchy.HPFQScheduler` — the Section 4 H-PFQ
  construction, generic in the per-node policy (H-WF2Q+, H-WFQ, H-SCFQ, ...).
* :class:`~repro.core.hbatch.VectorHWF2QPlus` — opt-in float64 columnar
  H-WF2Q+ backend (vectorized batch ARRIVE, fused RESET/RESTART chunks).
* :class:`~repro.core.hgps.HGPSFluidSystem` — the fluid H-GPS reference.
"""

from repro.core.packet import Packet, PacketPool
from repro.core.flow import FlowConfig, LeakyBucket
from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.core.fifo import FIFOScheduler
from repro.core.gps import GPSFluidSystem
from repro.core.wfq import WFQScheduler
from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.batch import FlowColumns, VectorWF2QPlus
from repro.core.scfq import SCFQScheduler
from repro.core.sfq import SFQScheduler
from repro.core.drr import DRRScheduler
from repro.core.virtual_clock import VirtualClockScheduler
from repro.core.wrr import WRRScheduler
from repro.core.ffq import FFQScheduler
from repro.core.ablation import NoEligibilityWF2QPlus, NoFloorWF2QPlus
from repro.core.hbatch import NodeColumns, VectorHWF2QPlus, make_vhwf2qplus
from repro.core.hgps import HGPSFluidSystem
from repro.core.hierarchy import (
    HPFQScheduler,
    NodeSpec,
    make_hwf2qplus,
    make_hwfq,
    make_hscfq,
    make_hsfq,
)

__all__ = [
    "Packet",
    "PacketPool",
    "FlowConfig",
    "LeakyBucket",
    "PacketScheduler",
    "ScheduledPacket",
    "FIFOScheduler",
    "GPSFluidSystem",
    "WFQScheduler",
    "WF2QScheduler",
    "WF2QPlusScheduler",
    "FlowColumns",
    "VectorWF2QPlus",
    "SCFQScheduler",
    "SFQScheduler",
    "DRRScheduler",
    "VirtualClockScheduler",
    "WRRScheduler",
    "FFQScheduler",
    "NoEligibilityWF2QPlus",
    "NoFloorWF2QPlus",
    "HGPSFluidSystem",
    "HPFQScheduler",
    "NodeColumns",
    "VectorHWF2QPlus",
    "make_vhwf2qplus",
    "NodeSpec",
    "make_hwf2qplus",
    "make_hwfq",
    "make_hscfq",
    "make_hsfq",
]
