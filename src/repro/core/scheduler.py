"""The common interface and shared machinery of all packet schedulers.

Every one-level PFQ algorithm (and the hierarchical H-PFQ server) exposes the
same small surface:

* :meth:`PacketScheduler.add_flow` — register a session with a service share.
* :meth:`PacketScheduler.enqueue` — a packet arrives at time ``now``.
* :meth:`PacketScheduler.dequeue` — the link asks for the next packet at
  time ``now``; returns a :class:`ScheduledPacket` record.

Timing conventions
------------------
The scheduler keeps a monotonically non-decreasing internal clock.  Calls may
omit ``now``:

* ``enqueue(packet)`` falls back to ``packet.arrival_time`` and then to the
  internal clock,
* ``dequeue()`` falls back to the time the previously dequeued packet
  finished transmission (i.e. it emulates a continuously busy link), which
  makes algorithm-level tests read naturally: enqueue everything at t=0,
  then ``dequeue()`` repeatedly to obtain the service order.

Subclasses implement four hooks (``_on_enqueue``, ``_select_flow``,
``_on_dequeued``, ``_on_system_empty``) and never touch the queues directly.

Batch operations
----------------
:meth:`PacketScheduler.enqueue_batch`, :meth:`PacketScheduler.dequeue_batch`
and :meth:`PacketScheduler.drain_until` process a *chunk* of packets per
call.  The base implementations loop over the per-packet operations, so
every scheduler inherits correct batch semantics; the hot schedulers (FIFO,
WF2Q+, SFQ/SCFQ, flattened H-WF2Q+) override them with amortized kernels
that hoist attribute lookups and skip per-packet hook dispatch while
producing packet-for-packet identical results (``tests/test_batch.py``).
Batch calls feed the ``batch_stats()`` counters either way, so the batched
fraction of a run is observable.
"""

import numbers
from collections import deque

from repro.core.flow import FlowConfig
from repro.core.packet import Packet
from repro.errors import (
    ConfigurationError,
    DuplicateFlowError,
    EmptySchedulerError,
    UnknownFlowError,
)
from repro.obs.events import DequeueEvent, DropEvent, EnqueueEvent, EventBus

__all__ = ["PacketScheduler", "ScheduledPacket", "FlowState",
           "DROP_TAIL", "DROP_FRONT", "DROP_LONGEST", "BATCH_BUCKETS",
           "BATCH_KERNEL_MIN"]

_INF = float("inf")

#: Drop policies for finite buffers.  ``tail`` rejects the arriving packet,
#: ``front`` evicts the oldest queued packet of the over-limit flow (so the
#: freshest data survives — the classic choice for control traffic), and
#: ``longest`` (shared buffer only) evicts from the currently longest queue
#: (longest-queue-drop, which approximately equalises per-flow loss).
DROP_TAIL = "tail"
DROP_FRONT = "front"
DROP_LONGEST = "longest"

#: Bucket labels of the packets-per-batch histogram (``batch_stats()``).
BATCH_BUCKETS = ("1", "2-7", "8-63", "64-511", "512+")


def _bucket(n):
    """Index into :data:`BATCH_BUCKETS` for a batch of ``n`` packets."""
    if n >= 64:
        return 4 if n >= 512 else 3
    if n >= 8:
        return 2
    return 1 if n >= 2 else 0

#: Chunks smaller than this bypass the amortized kernels and take the
#: per-packet loop: the kernels pay a fixed hoist/write-back setup cost
#: that only amortizes across the chunk, so below this size the plain
#: loop is faster (and results are identical either way).
BATCH_KERNEL_MIN = 8


def kernel_sized(chunk):
    """True when ``chunk`` is big enough for the amortized enqueue
    kernels; unsized iterables get the benefit of the doubt."""
    try:
        return len(chunk) >= BATCH_KERNEL_MIN
    except TypeError:
        return True


class ScheduledPacket:
    """The result of one dequeue: the packet plus its service interval.

    ``start_time`` is the instant the link began transmitting the packet and
    ``finish_time = start_time + length / link_rate`` the instant it ends.
    ``virtual_start`` / ``virtual_finish`` carry the algorithm's tags when it
    has them (``None`` for FIFO and DRR).
    """

    __slots__ = ("packet", "start_time", "finish_time", "virtual_start", "virtual_finish")

    def __init__(self, packet, start_time, finish_time, virtual_start=None, virtual_finish=None):
        self.packet = packet
        self.start_time = start_time
        self.finish_time = finish_time
        self.virtual_start = virtual_start
        self.virtual_finish = virtual_finish

    @property
    def flow_id(self):
        return self.packet.flow_id

    @property
    def delay(self):
        """Queueing + transmission delay, if the arrival time is known."""
        if self.packet.arrival_time is None:
            return None
        return self.finish_time - self.packet.arrival_time

    def __repr__(self):
        return (
            f"ScheduledPacket({self.packet!r}, "
            f"start={self.start_time!r}, finish={self.finish_time!r})"
        )


class FlowState:
    """Per-flow runtime state: the FIFO queue plus algorithm tag slots.

    ``index`` is the registration order; schedulers break virtual-tag ties
    by it, which makes service orders deterministic and matches the paper's
    Figure 2 convention (session 1, registered first, wins its ties).

    ``tag_epoch`` implements the lazy busy-period tag reset: schedulers that
    zero all tags at a busy-period boundary bump their scheduler-wide epoch
    instead of touching every flow, and a flow's stale tags are zeroed the
    next time they are read (see ``PacketScheduler._tag_epoch``).

    ``inv_rate`` caches ``1 / r_i`` (the inverse guaranteed rate) so tag
    updates are one multiply instead of a share-normalising division chain;
    ``rate_gen`` is the share-generation stamp that invalidates the cache
    when the total share or the link rate changes.
    """

    __slots__ = ("config", "queue", "start_tag", "finish_tag", "bits_queued",
                 "index", "tag_epoch", "inv_rate", "rate_gen")

    def __init__(self, config, index=0):
        self.config = config
        self.queue = deque()
        self.start_tag = 0
        self.finish_tag = 0
        self.bits_queued = 0
        self.index = index
        self.tag_epoch = 0
        self.inv_rate = None
        self.rate_gen = -1

    @property
    def flow_id(self):
        return self.config.flow_id

    @property
    def share(self):
        return self.config.share

    def head(self):
        return self.queue[0] if self.queue else None

    def __repr__(self):
        return f"FlowState({self.flow_id!r}, queued={len(self.queue)})"


class PacketScheduler:
    """Abstract base for all one-level and hierarchical packet schedulers.

    Parameters
    ----------
    rate:
        Output link rate in bits per second.
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name = "abstract"

    #: True for schedulers whose selection policy is Smallest Eligible
    #: virtual Finish time First (WF2Q, WF2Q+); the invariant checker
    #: verifies eligibility on every dequeue of such schedulers.
    seff = False

    #: Per-call packet cap for :meth:`drain_until` (None = unbounded).
    #: A class default so unconfigured instances pay zero per-instance
    #: storage; set it on an *instance* (directly, via the sim layer's
    #: ``chunk`` knob, or by :class:`repro.obs.profile.ChunkAutotuner`)
    #: to bound how many packets one burst-drain call emits.  Chunking
    #: never changes *what* is scheduled — callers like the Link re-enter
    #: ``drain_until`` from the last finish time, so service records are
    #: identical at any chunk size; only the amortization granularity
    #: (and the batch histogram) moves.
    drain_chunk = None

    def __init__(self, rate):
        #: The attached :class:`~repro.obs.events.EventBus`, or ``None``.
        #: An instance attribute (not a class default) so the hot-path
        #: guard is a single instance-dict hit resolving to this None.
        self._obs = None
        #: Generation stamp for the per-flow ``1/r_i`` caches; bumped
        #: whenever ``_total_share`` or the link rate changes.
        self._share_gen = 0
        #: Busy-period epoch for the lazy tag reset (see FlowState).
        self._tag_epoch = 0
        self.rate = rate  # property setter validates and bumps _share_gen
        self._flows = {}
        self._next_flow_index = 0
        self._buffer_limits = {}
        #: flow_id -> non-default drop policy (absent means drop-tail).
        self._drop_policies = {}
        #: Scheduler-wide packet budget shared by all flows (None = off).
        self._shared_limit = None
        self._shared_policy = DROP_TAIL
        self._drops = {}
        self._drops_total = 0
        #: Lifetime drop count: unlike ``_drops_total`` it is *never*
        #: decremented (``remove_flow`` forgets a departed flow's counter),
        #: so the conservation ledger stays balanced across flow churn.
        self._drops_lifetime = 0
        #: Offered packets (accepted or dropped); the conservation ledger's
        #: left-hand side.
        self._arrivals = 0
        self._total_share = 0
        self._backlog_packets = 0
        self._backlog_bits = 0
        self._clock = 0
        self._free_at = 0
        self._dequeues = 0
        self._enqueues = 0
        #: Insertion-ordered index of flows with a non-empty queue (dict
        #: used as an ordered set), maintained on every queue transition so
        #: ``backlogged_flows()`` is O(backlogged), not O(registered).
        self._backlogged = {}
        #: Batch-path counters: calls, packets moved through batch APIs,
        #: and a packets-per-batch histogram (see :data:`BATCH_BUCKETS`).
        self._batch_calls = 0
        self._batch_packets = 0
        self._batch_hist = [0, 0, 0, 0, 0]
        #: Idle flows whose FlowState was evicted to bound memory:
        #: flow_id -> {share, name, index}.  Evicted flows stay logically
        #: registered — their share keeps counting toward ``_total_share``
        #: and their registration index is preserved — so rate arithmetic
        #: and tie-breaks are identical to a run that never evicted.  See
        #: :meth:`evict_idle_flow`.
        self._evicted = {}

    @property
    def rate(self):
        """Output link rate in bits per second."""
        return self._rate

    @rate.setter
    def rate(self, value):
        if value <= 0:
            raise ConfigurationError(
                f"link rate must be positive, got {value!r}"
            )
        self._rate = value
        self._share_gen += 1

    # ------------------------------------------------------------------
    # Flow registration
    # ------------------------------------------------------------------
    def add_flow(self, flow_id, share=1, name=None):
        """Register a flow; returns its :class:`FlowConfig`.

        ``flow_id`` may also be a ready-made :class:`FlowConfig`.
        """
        if isinstance(flow_id, FlowConfig):
            config = flow_id
        else:
            config = FlowConfig(flow_id, share, name=name)
        if config.flow_id in self._flows or config.flow_id in self._evicted:
            raise DuplicateFlowError(config.flow_id)
        state = FlowState(config, index=self._next_flow_index)
        self._next_flow_index += 1
        self._flows[config.flow_id] = state
        self._total_share += config.share
        self._share_gen += 1
        self._on_flow_added(state)
        return config

    def remove_flow(self, flow_id):
        """Unregister an *idle* flow."""
        if flow_id in self._evicted:
            # An evicted flow is idle by construction; unregister it for
            # real — unlike eviction, removal gives its share back.
            record = self._evicted.pop(flow_id)
            self._total_share -= record["share"]
            if not self._flows and not self._evicted:
                self._total_share = 0
            self._share_gen += 1
            self._buffer_limits.pop(flow_id, None)
            self._drop_policies.pop(flow_id, None)
            self._drops_total -= self._drops.pop(flow_id, 0)
            return
        state = self._flow(flow_id)
        if state.queue:
            raise ConfigurationError(
                f"cannot remove backlogged flow {flow_id!r}"
            )
        self._on_flow_removed(state)
        del self._flows[flow_id]
        self._total_share -= state.share
        if not self._flows and not self._evicted:
            self._total_share = 0  # kill float residue from +=/-= churn
        self._share_gen += 1
        # Per-flow policy state must not leak to a future flow that happens
        # to reuse the id: a stale buffer cap would silently throttle it and
        # a stale drop counter would misattribute losses.  (The lifetime
        # drop counter keeps the departed flow's drops: conservation
        # accounts packets, not flows.)
        self._buffer_limits.pop(flow_id, None)
        self._drop_policies.pop(flow_id, None)
        self._drops_total -= self._drops.pop(flow_id, 0)
        self._backlogged.pop(flow_id, None)

    # ------------------------------------------------------------------
    # Live reconfiguration
    # ------------------------------------------------------------------
    def set_share(self, flow_id, share):
        """Renegotiate a flow's service share during a run.

        Existing head-of-queue start tags are kept (they record service
        already owed) and derived state — finish tags, heap keys, cached
        inverse rates — is rebased by the subclass's
        :meth:`_on_reconfigured` hook, so eq. (27)'s ``min S_i`` arm and
        the SEFF eligibility classification are unaffected.
        """
        if flow_id in self._evicted:
            self._revive(flow_id)
        state = self._flow(flow_id)
        if share <= 0:
            raise ConfigurationError(
                f"flow {flow_id!r}: share must be positive, got {share!r}"
            )
        old = state.config.share
        if share == old:
            return
        state.config = FlowConfig(flow_id, share, name=state.config.name)
        self._total_share += share - old
        self._share_gen += 1
        self._on_reconfigured()

    def set_link_rate(self, rate):
        """Change the output link rate during a run (e.g. link degradation).

        Tags are rebased exactly as for :meth:`set_share`: start tags are
        service baselines and persist; finish tags are recomputed under the
        new rate by :meth:`_on_reconfigured`.
        """
        if rate == self._rate:
            return
        self.rate = rate  # validates and bumps _share_gen
        self._on_reconfigured()

    def _on_reconfigured(self):
        """Hook: rebase derived tag state after a share/rate change.

        Called after ``_total_share`` / ``rate`` and ``_share_gen`` have
        been updated.  Tag-based subclasses recompute each backlogged
        head's finish tag ``F = S + L / r_i'`` and re-key finish-keyed
        heap entries; round-robin subclasses refresh cached share minima.
        The base implementation does nothing (FIFO ignores shares).
        """

    def _flow(self, flow_id):
        try:
            return self._flows[flow_id]
        except KeyError:
            raise UnknownFlowError(flow_id) from None

    # ------------------------------------------------------------------
    # Idle-flow eviction (bounded memory for long-lived service runs)
    # ------------------------------------------------------------------
    def evict_idle_flow(self, flow_id, now=None):
        """Drop an idle flow's :class:`FlowState`, keeping it registered.

        Returns True when the state was evicted, False when the scheduler
        refuses (flow backlogged, already evicted, or the algorithm cannot
        prove the flow's tags are dead — see :meth:`_evictable_idle`).

        Eviction is *exact*: the flow's share stays in ``_total_share``
        (other flows' guaranteed rates are untouched), its registration
        index is preserved (tie-breaks replay identically), and revival on
        the next arrival rebuilds a zero-tag state that the algorithm's
        own idle-flow tag rules map to the very tags the retained state
        would have produced.  Only schedulers that can prove that mapping
        opt in by overriding :meth:`_evictable_idle`.
        """
        state = self._flows.get(flow_id)
        if state is None:
            if flow_id in self._evicted:
                return False
            raise UnknownFlowError(flow_id)
        if state.queue:
            return False
        if now is None:
            now = self._clock
        if not self._evictable_idle(state, now):
            return False
        self._evicted[flow_id] = {
            "share": state.config.share,
            "name": state.config.name,
            "index": state.index,
        }
        del self._flows[flow_id]
        return True

    def _evictable_idle(self, state, now):
        """Hook: may this idle flow's state be discarded without changing
        any future service order?  Default False — only algorithms whose
        idle-flow tag rules make a zero-tag revival provably equivalent
        (WF2Q+'s ``S = max(F, V)``, FIFO's statelessness) opt in.
        """
        return False

    def _revive(self, flow_id):
        """Rebuild the FlowState of an evicted flow on its next arrival.

        The revived state is the canonical fresh-flow state (zero tags,
        stale tag epoch) with the *original* registration index and share;
        :meth:`_evictable_idle` guaranteed at eviction time that this is
        indistinguishable from the retained state.
        """
        record = self._evicted.pop(flow_id, None)
        if record is None:
            raise UnknownFlowError(flow_id)
        config = FlowConfig(flow_id, record["share"], name=record["name"])
        state = FlowState(config, index=record["index"])
        self._flows[flow_id] = state
        return state

    @property
    def evicted_flow_ids(self):
        """Flow ids whose FlowState is currently evicted."""
        return list(self._evicted)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def flow_ids(self):
        ids = list(self._flows)
        if self._evicted:
            ids.extend(self._evicted)  # evicted flows stay registered
        return ids

    @property
    def backlog(self):
        """Number of queued packets across all flows."""
        return self._backlog_packets

    @property
    def backlog_bits(self):
        return self._backlog_bits

    @property
    def is_empty(self):
        return self._backlog_packets == 0

    @property
    def clock(self):
        """Latest time the scheduler has observed."""
        return self._clock

    @property
    def busy_until(self):
        """Finish time of the most recently dequeued packet."""
        return self._free_at

    def queue_length(self, flow_id):
        """Queued packet count for one flow."""
        if flow_id in self._evicted:
            return 0  # evicted flows are idle by construction
        return len(self._flow(flow_id).queue)

    def queued_bits(self, flow_id):
        if flow_id in self._evicted:
            return 0
        return self._flow(flow_id).bits_queued

    def backlogged_flows(self):
        """Flow ids with at least one queued packet.

        O(backlogged): served from an index maintained on queue
        transitions, in became-backlogged order (registration order after
        a :meth:`restore`), so chaos probes and the batch path do not pay
        a scan over every registered flow per call.
        """
        return list(self._backlogged)

    def _require_shares(self, flow_id):
        """The flow's state, or ConfigurationError when no share exists."""
        if not self._flows or self._total_share <= 0:
            raise ConfigurationError(
                f"{self.name}: no registered flows with positive total "
                f"share; cannot compute a rate/share for {flow_id!r} "
                f"(all flows removed?)"
            )
        return self._flow(flow_id)

    def guaranteed_rate(self, flow_id):
        """Absolute guaranteed rate r_i = share_i / total_share * rate."""
        record = self._evicted.get(flow_id)
        if record is not None:
            return record["share"] / self._total_share * self._rate
        state = self._require_shares(flow_id)
        return state.share / self._total_share * self._rate

    def normalized_share(self, flow_id):
        record = self._evicted.get(flow_id)
        if record is not None:
            return record["share"] / self._total_share
        state = self._require_shares(flow_id)
        return state.share / self._total_share

    def _inv_rate(self, state):
        """Cached inverse guaranteed rate ``1 / r_i`` for a flow state.

        Tag updates run once per head-of-queue packet; recomputing
        ``share / total * rate`` there costs an attribute chase and two
        divisions per packet.  The cache is stamped with ``_share_gen``,
        which add_flow / remove_flow and the rate setter bump, so it is
        recomputed only when the underlying quantities actually changed.
        """
        gen = self._share_gen
        if state.rate_gen != gen:
            state.inv_rate = 1 / (
                state.config.share / self._total_share * self._rate
            )
            state.rate_gen = gen
        return state.inv_rate

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def observer(self):
        """The attached :class:`~repro.obs.events.EventBus`, or ``None``."""
        return self._obs

    def attach_observer(self, *sinks):
        """Subscribe sinks to this scheduler's event stream.

        Creates the :class:`~repro.obs.events.EventBus` on first use and
        returns it.  With a bus attached, every enqueue/dequeue/drop (and,
        for tag-based schedulers, virtual-time and hierarchy-node updates)
        emits a typed event; with none attached the emission sites reduce
        to a single ``is None`` test.
        """
        if self._obs is None:
            self._obs = EventBus()
        for sink in sinks:
            self._obs.subscribe(sink)
        return self._obs

    def detach_observer(self, sink=None):
        """Remove one sink (or all, when ``sink`` is None).

        The bus is dropped once empty, restoring the no-op fast path.
        Returns True if something was detached.
        """
        if self._obs is None:
            return False
        if sink is None:
            self._obs = None
            return True
        removed = self._obs.unsubscribe(sink)
        if not self._obs.sinks:
            self._obs = None
        return removed

    def system_virtual_time(self, now=None):
        """The scheduler-wide virtual time V, or ``None`` if undefined.

        Overridden by tag-based schedulers; consumed by the dequeue event
        stream and the SEFF/monotonicity invariant checks.
        """
        return None

    # ------------------------------------------------------------------
    # Main operations
    # ------------------------------------------------------------------
    @property
    def lossless(self):
        """True while no buffer cap is configured: every enqueue is
        accepted, so callers batching arrivals (the link's
        :meth:`~repro.sim.link.Link.send_batch`) need no per-packet
        accept/reject bookkeeping."""
        return not self._buffer_limits and self._shared_limit is None

    def set_buffer_limit(self, flow_id, packets, policy=DROP_TAIL):
        """Cap a flow's queue at ``packets``; ``None`` removes the cap.

        ``policy`` selects what happens on an over-limit arrival:
        ``"tail"`` rejects the arriving packet (the default; what lets TCP
        sources self-regulate in the link-sharing experiments), ``"front"``
        evicts the flow's oldest queued packet and accepts the arrival.
        """
        self._flow(flow_id)
        if packets is None:
            self._buffer_limits.pop(flow_id, None)
            self._drop_policies.pop(flow_id, None)
            return
        if packets < 1:
            raise ConfigurationError(
                f"buffer limit must be >= 1 packet, got {packets!r}"
            )
        if policy not in (DROP_TAIL, DROP_FRONT):
            raise ConfigurationError(
                f"per-flow drop policy must be {DROP_TAIL!r} or "
                f"{DROP_FRONT!r}, got {policy!r}"
            )
        self._buffer_limits[flow_id] = packets
        if policy == DROP_TAIL:
            self._drop_policies.pop(flow_id, None)
        else:
            self._drop_policies[flow_id] = policy

    def set_shared_buffer(self, packets, policy=DROP_TAIL):
        """Cap the *total* backlog at ``packets``; ``None`` removes the cap.

        ``policy``: ``"tail"`` rejects the arriving packet; ``"longest"``
        (longest-queue-drop) evicts the newest packet of the currently
        longest queue and accepts the arrival.
        """
        if packets is None:
            self._shared_limit = None
            self._shared_policy = DROP_TAIL
            return
        if packets < 1:
            raise ConfigurationError(
                f"shared buffer limit must be >= 1 packet, got {packets!r}"
            )
        if policy not in (DROP_TAIL, DROP_LONGEST):
            raise ConfigurationError(
                f"shared drop policy must be {DROP_TAIL!r} or "
                f"{DROP_LONGEST!r}, got {policy!r}"
            )
        self._shared_limit = packets
        self._shared_policy = policy

    def drops(self, flow_id=None):
        """Packets dropped by the buffer cap (per flow, or total).

        The total is a running counter maintained at drop time, not a
        sum over the per-flow dict (which TCP experiments query per
        delivered ack).
        """
        if flow_id is None:
            return self._drops_total
        return self._drops.get(flow_id, 0)

    def conservation(self):
        """The packet ledger: ``arrivals == departures + drops + backlog``.

        ``drops`` here is the *lifetime* counter (never decremented by
        ``remove_flow``), so the ledger balances across flow churn; the
        chaos harness asserts ``balanced`` after every fault scenario.
        """
        arrivals = self._arrivals
        departures = self._dequeues
        dropped = self._drops_lifetime
        backlog = self._backlog_packets
        return {
            "arrivals": arrivals,
            "departures": departures,
            "drops": dropped,
            "backlog": backlog,
            "balanced": arrivals == departures + dropped + backlog,
        }

    # ------------------------------------------------------------------
    # Drop bookkeeping (buffer-limit enforcement)
    # ------------------------------------------------------------------
    def _validate_length(self, length):
        """Slow-path packet length validation (fast paths inline the
        common int/float cases); raises ConfigurationError on any value
        that would corrupt tag arithmetic."""
        if isinstance(length, bool) or not isinstance(length, numbers.Real):
            raise ConfigurationError(
                f"{self.name}: packet length must be a real number, "
                f"got {length!r}"
            )
        if not length > 0:  # False for non-positives *and* NaN
            raise ConfigurationError(
                f"{self.name}: packet length must be positive, "
                f"got {length!r}"
            )
        if length == _INF:
            raise ConfigurationError(
                f"{self.name}: packet length must be finite, got {length!r}"
            )

    def _record_drop(self, packet, now, policy, evicted):
        flow_id = packet.flow_id
        count = self._drops.get(flow_id, 0) + 1
        self._drops[flow_id] = count
        self._drops_total += 1
        self._drops_lifetime += 1
        obs = self._obs
        if obs is not None:
            obs.emit(DropEvent(now, self.name, flow_id, packet.uid,
                               packet.length, count, policy, evicted))

    def _evict(self, state, index, now, policy):
        """Evict ``state.queue[index]``, charging the drop to its flow."""
        queue = state.queue
        victim = queue[index]
        if index == 0:
            queue.popleft()
        else:
            del queue[index]
        state.bits_queued -= victim.length
        self._backlog_packets -= 1
        self._backlog_bits -= victim.length
        if not queue:
            del self._backlogged[victim.flow_id]
        self._on_packet_evicted(state, victim, index, now)
        self._record_drop(victim, now, policy, True)
        return victim

    def _evictable_front_index(self, state):
        """Queue slot drop-front may evict, or None when it must refuse.

        The hierarchical scheduler overrides this: a committed logical
        head (possibly adopted up the tree) must never be evicted.
        """
        return 0

    def _evictable_tail_index(self, state):
        """Queue slot longest-queue-drop may evict, or None to skip."""
        return len(state.queue) - 1

    def _admit_over_limit(self, state, packet, now):
        """Per-flow cap reached: apply the flow's drop policy.

        Returns True when the arrival should be accepted (an old packet
        was evicted to make room), False when the arrival was dropped.
        """
        policy = self._drop_policies.get(packet.flow_id, DROP_TAIL)
        if policy == DROP_FRONT:
            index = self._evictable_front_index(state)
            if index is not None:
                self._evict(state, index, now, policy)
                return True
        self._record_drop(packet, now, policy, False)
        return False

    def _admit_over_shared(self, state, packet, now):
        """Shared buffer full: apply the scheduler-wide drop policy."""
        policy = self._shared_policy
        if policy == DROP_LONGEST:
            victim = self._lqd_victim()
            if victim is not None:
                victim_state, index = victim
                self._evict(victim_state, index, now, policy)
                return True
        self._record_drop(packet, now, policy, False)
        return False

    def _lqd_victim(self):
        """(FlowState, queue index) of the longest-queue-drop victim.

        The longest *evictable* queue wins; registration order breaks
        ties.  O(N) — acceptable on the drop path, which only runs under
        overload.
        """
        best = None
        best_len = 0
        for flow_state in self._flows.values():
            qlen = len(flow_state.queue)
            # Registration order (index) breaks ties explicitly: after an
            # evict/revive cycle the dict's iteration order no longer
            # matches registration order, and the victim choice must not
            # depend on eviction history.
            if qlen > best_len or (
                qlen == best_len and best is not None
                and flow_state.index < best[0].index
            ):
                index = self._evictable_tail_index(flow_state)
                if index is not None:
                    best = (flow_state, index)
                    best_len = qlen
        return best

    def _on_packet_evicted(self, state, packet, index, now):
        """Hook: a queued packet left ``state.queue[index]`` by eviction.

        Subclasses with head-of-queue tags must re-tag when ``index == 0``:
        the successor inherits the evicted head's start tag (service that
        was never consumed) and only the finish tag is recomputed for the
        new head length; when the queue emptied, the finish tag is rolled
        back to the start tag so a later arrival resumes from the same
        baseline.
        """

    def enqueue(self, packet, now=None):
        """A packet arrives.  ``now`` defaults to ``packet.arrival_time``.

        Returns True if the packet was queued, False if the flow's buffer
        cap dropped it.
        """
        if now is None:
            now = packet.arrival_time
        if now is None:
            now = self._clock
        if now < self._clock:
            raise ValueError(
                f"enqueue time {now!r} precedes scheduler clock {self._clock!r}"
            )
        if packet.arrival_time is None:
            packet.arrival_time = now
        flow_id = packet.flow_id
        state = self._flows.get(flow_id)
        if state is None:
            # Evicted flows resurrect on arrival (raises UnknownFlowError
            # for flows that were never registered).  The batch kernels
            # fall back to this per-packet path for any unknown flow, so
            # revival is inherited everywhere at zero hot-path cost.
            state = self._revive(flow_id)
        length = packet.length
        # Inline fast path for the common length types; anything unusual
        # (bool, NaN/inf, non-numeric, exotic Real types) takes the slow
        # validator, which raises ConfigurationError for invalid values.
        if type(length) is float:
            if not 0 < length < _INF:  # False for NaN, inf, non-positive
                self._validate_length(length)
        elif type(length) is not int:
            self._validate_length(length)
        elif length <= 0:
            self._validate_length(length)
        self._clock = now
        self._arrivals += 1
        # The idle test runs before any eviction: an arrival that makes
        # room by evicting the system's last queued packet continues the
        # *same* busy period (no time passed), so tags and V must persist.
        was_idle = self._backlog_packets == 0
        if self._buffer_limits:
            limit = self._buffer_limits.get(flow_id)
            if limit is not None and len(state.queue) >= limit:
                if not self._admit_over_limit(state, packet, now):
                    return False
        if self._shared_limit is not None \
                and self._backlog_packets >= self._shared_limit:
            if not self._admit_over_shared(state, packet, now):
                return False
        was_flow_empty = not state.queue
        state.queue.append(packet)
        state.bits_queued += length
        self._backlog_packets += 1
        self._backlog_bits += length
        self._enqueues += 1
        if was_flow_empty:
            self._backlogged[flow_id] = True
        if was_idle:
            # A new system busy period begins now (at the earliest).
            self._free_at = max(self._free_at, now)
        self._on_enqueue(state, packet, now, was_flow_empty, was_idle)
        obs = self._obs
        if obs is not None:
            obs.emit(EnqueueEvent(now, self.name, packet.flow_id, packet.uid,
                                  packet.length, self._backlog_packets,
                                  len(state.queue)))
        return True

    def dequeue(self, now=None):
        """Select the next packet for transmission at time ``now``.

        Returns a :class:`ScheduledPacket`.  Raises
        :class:`~repro.errors.EmptySchedulerError` when nothing is queued.
        """
        if self._backlog_packets == 0:
            raise EmptySchedulerError(f"{self.name}: dequeue on empty scheduler")
        if now is None:
            now = max(self._clock, self._free_at)
        if now < self._clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {self._clock!r}"
            )
        self._clock = now
        state = self._select_flow(now)
        packet = state.queue.popleft()
        length = packet.length
        state.bits_queued -= length
        self._backlog_packets -= 1
        self._backlog_bits -= length
        self._dequeues += 1
        if not state.queue:
            del self._backlogged[packet.flow_id]
        finish = now + length / self._rate
        self._free_at = finish
        record = self._make_record(state, packet, now, finish)
        self._on_dequeued(state, packet, now)
        obs = self._obs
        if obs is not None:
            obs.emit(DequeueEvent(
                now, self.name, packet.flow_id, packet.uid, packet.length,
                packet.arrival_time, record.start_time, record.finish_time,
                record.virtual_start, record.virtual_finish,
                self.system_virtual_time(now), self.seff,
                self._backlog_packets))
        if self._backlog_packets == 0:
            self._on_system_empty(now)
        return record

    def sync(self, now=None):
        """Settle any lazily deferred internal work up to time ``now``.

        The flat schedulers have none (no-op); the hierarchical scheduler
        runs a pending RESET-PATH whose transmission has completed, so
        callers about to check quiescence (detach/remove during fault
        injection) see the settled tree.
        """

    def drain(self, now=None):
        """Dequeue everything back-to-back; returns the list of records.

        Emulates a continuously busy link starting at ``now`` (default: the
        natural next transmission time).
        """
        records = []
        if self.is_empty:
            return records
        if now is not None:
            record = self.dequeue(now)
            records.append(record)
        while not self.is_empty:
            records.append(self.dequeue())
        return records

    # ------------------------------------------------------------------
    # Batch operations
    # ------------------------------------------------------------------
    def _count_batch(self, n):
        """Record one batch-API call of ``n`` packets in the counters."""
        self._batch_calls += 1
        self._batch_packets += n
        self._batch_hist[_bucket(n)] += 1

    def batch_stats(self):
        """Counters proving (not inferring) batch-path amortization.

        ``batched_fraction`` is the share of all enqueues+dequeues that
        went through a batch API; ``packets_per_batch`` is a histogram
        over :data:`BATCH_BUCKETS`.  Surfaced by ``repro stats
        --pipeline`` and :class:`~repro.obs.profile.SchedulerProfiler`.
        """
        ops = self._enqueues + self._dequeues
        return {
            "batch_calls": self._batch_calls,
            "batch_packets": self._batch_packets,
            "batched_fraction": self._batch_packets / ops if ops else 0.0,
            "packets_per_batch": dict(zip(BATCH_BUCKETS, self._batch_hist)),
        }

    def enqueue_batch(self, packets, now=None):
        """Enqueue a chunk of packets in order; returns the number accepted.

        Semantically identical to calling :meth:`enqueue` per packet:
        arrival times must be non-decreasing, every buffer policy applies,
        and (with an observer attached) the same per-packet events fire.
        When ``now`` is given it is used for *every* packet (a same-instant
        burst); otherwise each packet's ``arrival_time`` drives the clock
        as usual.  Subclasses with amortized chunk kernels override this;
        the base implementation loops.
        """
        enqueue = self.enqueue
        accepted = 0
        for packet in packets:
            if enqueue(packet, now):
                accepted += 1
        # _count_batch inlined: this loop is also the chunk-of-1 path the
        # Link takes per packet, so its fixed cost stays minimal.
        self._batch_calls += 1
        self._batch_packets += accepted
        self._batch_hist[_bucket(accepted)] += 1
        return accepted

    def dequeue_batch(self, n, now=None):
        """Dequeue up to ``n`` packets back-to-back; returns their records.

        The first dequeue happens at ``now`` (default: the natural next
        transmission time), each subsequent one at the previous packet's
        finish time — exactly the semantics of ``n`` consecutive
        :meth:`dequeue` calls.  Stops early when the scheduler empties;
        unlike :meth:`dequeue` an empty scheduler yields ``[]`` rather
        than raising.
        """
        records = []
        if n > 0 and self._backlog_packets:
            if n == 1:
                records.append(self.dequeue(now))
            else:
                append = records.append
                dequeue = self.dequeue
                append(dequeue(now))
                n -= 1
                while n > 0 and self._backlog_packets:
                    append(dequeue())
                    n -= 1
        self._batch_calls += 1
        m = len(records)
        self._batch_packets += m
        self._batch_hist[_bucket(m)] += 1
        return records

    def drain_until(self, limit, now=None, into=None):
        """Dequeue back-to-back until ``limit``; the crossing packet is kept.

        Emulates a continuously busy link exactly like :meth:`dequeue_batch`
        but bounded by *time* instead of count: packets are dequeued until
        the scheduler empties or a packet's finish time reaches or passes
        ``limit``.  That crossing packet is the last record returned — its
        transmission straddles ``limit``, which is precisely what a caller
        re-entering real-time event processing needs (the Link burst drain
        schedules its completion as a real event).  ``limit=None`` drains
        everything.  ``into`` optionally names the output list (appended
        in service order even if a dequeue raises mid-chunk, so callers
        can account for partially drained work).  A non-None
        :attr:`drain_chunk` additionally caps the packets per call;
        callers observe a shorter chunk and re-enter, so the resulting
        service schedule is unchanged.
        """
        records = [] if into is None else into
        if self._backlog_packets:
            append = records.append
            dequeue = self.dequeue
            chunk = self.drain_chunk
            count = 1
            record = dequeue(now)
            append(record)
            if limit is None:
                while self._backlog_packets and count != chunk:
                    append(dequeue())
                    count += 1
            else:
                while (record.finish_time < limit and self._backlog_packets
                       and count != chunk):
                    record = dequeue()
                    append(record)
                    count += 1
            self._count_batch(count)
        else:
            self._count_batch(0)
        return records

    def _enqueue_batch_passive(self, packets, now=None):
        """Amortized enqueue loop for schedulers whose ``_on_enqueue`` does
        nothing unless the flow queue was empty.

        The contract: the caller (a WF2Q+/SFQ/SCFQ-style override) has
        verified there is no observer, no buffer caps, and that the
        subclass's ``_on_enqueue`` is a no-op for a packet joining a
        non-empty queue.  Under it, the only per-packet work left is
        validation, the queue append and counter bookkeeping — all done on
        hoisted locals here.  Any packet that needs the full machinery
        (empty flow queue, idle system, exotic length/arrival time,
        unknown flow) flushes the hoisted counters and takes the exact
        per-packet :meth:`enqueue`, so edge semantics are inherited, not
        re-implemented.
        """
        flows = self._flows
        clock = self._clock
        backlog = self._backlog_packets
        backlog_bits = self._backlog_bits
        arrivals = enqueues = 0
        accepted = 0
        enqueue = self.enqueue
        for packet in packets:
            t = packet.arrival_time if now is None else now
            if t is None:
                t = clock
            state = flows.get(packet.flow_id)
            length = packet.length
            if (state is None or not state.queue or t < clock
                    or (length <= 0 if type(length) is int
                        else type(length) is not float
                        or not 0.0 < length < _INF)):
                # Flush the hoisted counters so the per-packet path (and
                # its error paths) sees and leaves consistent state.
                self._clock = clock
                self._arrivals += arrivals
                self._enqueues += enqueues
                self._backlog_packets = backlog
                self._backlog_bits = backlog_bits
                arrivals = enqueues = 0
                if enqueue(packet, t):
                    accepted += 1
                clock = self._clock
                backlog = self._backlog_packets
                backlog_bits = self._backlog_bits
                continue
            if packet.arrival_time is None:
                packet.arrival_time = t
            clock = t
            arrivals += 1
            state.queue.append(packet)
            state.bits_queued += length
            backlog += 1
            backlog_bits += length
            enqueues += 1
            accepted += 1
        self._clock = clock
        self._arrivals += arrivals
        self._enqueues += enqueues
        self._backlog_packets = backlog
        self._backlog_bits = backlog_bits
        self._count_batch(accepted)
        return accepted

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Plain-data checkpoint of all mutable scheduler state.

        The snapshot is a nested dict of plain values (numbers, strings,
        packet dicts, heap entry lists) — picklable, and exact: Fraction
        tags survive untouched, so a restored run reproduces the original
        packet-for-packet (``tests/test_checkpoint.py``).

        Restore into a scheduler built by the *same* configuration code
        (same flow set, same registration order, same topology);
        :meth:`restore` validates this.  Subclasses contribute their
        algorithm state via :meth:`_snapshot_extra`.
        """
        flows = {}
        for flow_id, state in self._flows.items():
            flows[flow_id] = {
                "queue": [p.to_dict() for p in state.queue],
                "start_tag": state.start_tag,
                "finish_tag": state.finish_tag,
                "bits_queued": state.bits_queued,
                "index": state.index,
                "tag_epoch": state.tag_epoch,
                "share": state.config.share,
            }
        return {
            "scheduler": self.name,
            "rate": self._rate,
            "clock": self._clock,
            "free_at": self._free_at,
            "tag_epoch": self._tag_epoch,
            "next_flow_index": self._next_flow_index,
            "arrivals": self._arrivals,
            "enqueues": self._enqueues,
            "dequeues": self._dequeues,
            "drops": dict(self._drops),
            "drops_total": self._drops_total,
            "drops_lifetime": self._drops_lifetime,
            "backlog_packets": self._backlog_packets,
            "backlog_bits": self._backlog_bits,
            "buffer_limits": dict(self._buffer_limits),
            "drop_policies": dict(self._drop_policies),
            "shared_limit": self._shared_limit,
            "shared_policy": self._shared_policy,
            "batch_calls": self._batch_calls,
            "batch_packets": self._batch_packets,
            "batch_hist": list(self._batch_hist),
            "flows": flows,
            "evicted": {fid: dict(rec) for fid, rec in self._evicted.items()},
            "extra": self._snapshot_extra(),
        }

    def restore(self, snap):
        """Restore a :meth:`snapshot` into this (compatibly built) scheduler.

        Returns the ``uid -> Packet`` map of the rebuilt queued packets
        (subclass extras and the Link/Simulator joint checkpoint resolve
        their packet references through it).
        """
        if snap.get("scheduler") != self.name:
            raise ConfigurationError(
                f"snapshot is from scheduler {snap.get('scheduler')!r}, "
                f"cannot restore into {self.name!r}"
            )
        flows_snap = snap["flows"]
        evicted_snap = snap.get("evicted") or {}
        # Realign this scheduler's live/evicted split with the snapshot's
        # before the per-flow restore: a freshly built scheduler has every
        # flow live, while the snapshot may have evicted some (and vice
        # versa after in-process rollback).
        for fid in list(self._evicted):
            if fid in flows_snap:
                self._revive(fid)
        for fid in evicted_snap:
            state = self._flows.pop(fid, None)
            if state is not None:
                self._evicted[fid] = {
                    "share": state.config.share,
                    "name": state.config.name,
                    "index": state.index,
                }
        if set(flows_snap) != set(self._flows) \
                or set(evicted_snap) != set(self._evicted):
            missing = (set(flows_snap) | set(evicted_snap)) \
                ^ (set(self._flows) | set(self._evicted))
            raise ConfigurationError(
                f"{self.name}: snapshot flow set does not match this "
                f"scheduler (mismatched: {sorted(map(repr, missing))})"
            )
        # The snapshot's records are authoritative (index/share may have
        # drifted through set_share while evicted is impossible — set_share
        # revives — but a rebuilt scheduler's records are fresh guesses).
        self._evicted = {fid: dict(rec) for fid, rec in evicted_snap.items()}
        uid_map = {}
        total_share = 0
        for rec in evicted_snap.values():
            total_share += rec["share"]
        for flow_id, state in self._flows.items():
            fs = flows_snap[flow_id]
            if state.index != fs["index"]:
                raise ConfigurationError(
                    f"{self.name}: flow {flow_id!r} was registered in a "
                    f"different order than the snapshot (index "
                    f"{state.index} != {fs['index']}); tie-breaks would "
                    f"diverge"
                )
            queue = deque()
            for packet_dict in fs["queue"]:
                packet = Packet.from_dict(packet_dict)
                uid_map[packet.uid] = packet
                queue.append(packet)
            state.queue = queue
            state.start_tag = fs["start_tag"]
            state.finish_tag = fs["finish_tag"]
            state.bits_queued = fs["bits_queued"]
            state.tag_epoch = fs["tag_epoch"]
            if state.config.share != fs["share"]:
                state.config = FlowConfig(flow_id, fs["share"],
                                          name=state.config.name)
            state.rate_gen = -1  # force inv_rate recomputation
            total_share += fs["share"]
        self._total_share = total_share
        self._rate = snap["rate"]
        self._share_gen += 1
        self._clock = snap["clock"]
        self._free_at = snap["free_at"]
        self._tag_epoch = snap["tag_epoch"]
        self._next_flow_index = snap["next_flow_index"]
        self._arrivals = snap["arrivals"]
        self._enqueues = snap["enqueues"]
        self._dequeues = snap["dequeues"]
        self._drops = dict(snap["drops"])
        self._drops_total = snap["drops_total"]
        self._drops_lifetime = snap["drops_lifetime"]
        self._backlog_packets = snap["backlog_packets"]
        self._backlog_bits = snap["backlog_bits"]
        self._buffer_limits = dict(snap["buffer_limits"])
        self._drop_policies = dict(snap["drop_policies"])
        self._shared_limit = snap["shared_limit"]
        self._shared_policy = snap["shared_policy"]
        self._batch_calls = snap.get("batch_calls", 0)
        self._batch_packets = snap.get("batch_packets", 0)
        self._batch_hist = list(snap.get("batch_hist", (0, 0, 0, 0, 0)))
        # Rebuild the backlogged index from the restored queues
        # (registration order — deterministic for any restored run).
        self._backlogged = {
            fid: True for fid, state in self._flows.items() if state.queue
        }
        self._restore_extra(snap["extra"], uid_map)
        return uid_map

    def _snapshot_extra(self):
        """Hook: subclass algorithm state for :meth:`snapshot`.

        Must return plain data; packet references are stored as uids and
        resolved back through the uid map in :meth:`_restore_extra`.
        """
        return None

    def _restore_extra(self, extra, uid_map):
        """Hook: restore the state captured by :meth:`_snapshot_extra`."""

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _on_flow_added(self, state):
        """Called after a flow is registered."""

    def _on_flow_removed(self, state):
        """Called before a flow is unregistered."""

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        """Called after a packet joined ``state.queue``."""

    def _select_flow(self, now):
        """Return the FlowState whose head packet is served next."""
        raise NotImplementedError

    def _on_dequeued(self, state, packet, now):
        """Called after ``packet`` left ``state.queue``."""

    def _on_system_empty(self, now):
        """Called when the last packet leaves the system (busy period end)."""

    def _make_record(self, state, packet, now, finish):
        """Build the ScheduledPacket; subclasses may attach virtual tags."""
        return ScheduledPacket(packet, now, finish)

    def __repr__(self):
        return (
            f"{type(self).__name__}(rate={self.rate!r}, "
            f"flows={len(self._flows)}, backlog={self._backlog_packets})"
        )
