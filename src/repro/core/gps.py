"""Exact event-driven simulation of the fluid GPS server.

Generalized Processor Sharing (Section 2.1 of the paper) serves every
backlogged session simultaneously in proportion to its share.  This module
tracks the fluid system *exactly*:

* the virtual time ``V_GPS`` of eqs. (4)-(5), a piecewise-linear function of
  real time with slope ``1 / sum(phi_i, i backlogged)`` (shares normalised so
  they sum to one across registered flows);
* per-packet virtual start/finish tags per eqs. (6)-(7):
  ``S = max(F_prev, V(a))``, ``F = S + L / r_i``;
* the *real* GPS finish time of every packet (virtual tags inverted through
  the piecewise-linear V), which is what Figure 2's GPS timeline shows;
* exact cumulative fluid service ``W_i(0, t)`` per session.

WFQ selects "Smallest virtual Finish time First" (SFF) over these tags;
WF2Q additionally requires eligibility ``S <= V(now)`` (SEFF).  Both embed a
:class:`GPSFluidSystem` fed with their own arrival stream — which is exactly
why their worst-case complexity is O(N) (Section 3.4): a single ``advance``
may process O(N) session-empty events.

The implementation is numeric-type-agnostic: run it on
:class:`fractions.Fraction` inputs for bit-exact verification.
"""

import heapq
import itertools

from repro.errors import (
    ConfigurationError,
    DuplicateFlowError,
    UnknownFlowError,
)

__all__ = ["GPSFluidSystem", "GPSPacket"]


class GPSPacket:
    """A packet as seen by the fluid system, with its virtual tags."""

    __slots__ = ("flow_id", "length", "arrival_time", "virtual_start",
                 "virtual_finish", "finish_time", "uid")

    def __init__(self, uid, flow_id, length, arrival_time, virtual_start, virtual_finish):
        self.uid = uid
        self.flow_id = flow_id
        self.length = length
        self.arrival_time = arrival_time
        self.virtual_start = virtual_start
        self.virtual_finish = virtual_finish
        #: Real time the packet's last bit leaves the fluid server
        #: (filled in once the simulation reaches that instant).
        self.finish_time = None

    def __repr__(self):
        return (
            f"GPSPacket(flow={self.flow_id!r}, len={self.length!r}, "
            f"S={self.virtual_start!r}, F={self.virtual_finish!r}, "
            f"d={self.finish_time!r})"
        )


class _GPSFlow:
    __slots__ = ("flow_id", "share", "phi", "last_finish_tag",
                 "final_finish_tag", "queued", "backlogged", "service_acc",
                 "v_enter")

    def __init__(self, flow_id, share):
        self.flow_id = flow_id
        self.share = share
        self.phi = 0               # normalised share, cached by add_flow
        self.last_finish_tag = 0   # F of the most recently arrived packet
        self.final_finish_tag = 0  # F of the last packet still in the system
        self.queued = 0            # packets not yet fully served
        self.backlogged = False
        self.service_acc = 0       # bits served in completed backlog periods
        self.v_enter = 0           # V when the current backlog period began


class GPSFluidSystem:
    """Fluid GPS server over a set of weighted flows.

    Time inputs (``arrive``, ``advance``, queries) must be non-decreasing.
    Flows must be registered while the system is idle.
    """

    __slots__ = ("rate", "_flows", "_total_share", "_time", "_virtual",
                 "_sum_phi", "_backlogged", "_empty_events", "_pending",
                 "_departed", "_seq", "_uids")

    def __init__(self, rate):
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate!r}")
        self.rate = rate
        self._flows = {}
        self._total_share = 0
        self._time = 0          # real time the fluid state is valid for
        self._virtual = 0       # V_GPS at self._time
        self._sum_phi = 0       # sum of *normalised* shares of backlogged flows
        self._backlogged = set()
        # (final_finish_tag, seq, flow_id): lazy session-empty events.
        self._empty_events = []
        # (virtual_finish, seq, GPSPacket): pending packet departures.
        self._pending = []
        self._departed = []
        self._seq = itertools.count()
        self._uids = itertools.count()

    # ------------------------------------------------------------------
    # Registration / introspection
    # ------------------------------------------------------------------
    def add_flow(self, flow_id, share):
        if share <= 0:
            raise ConfigurationError(
                f"flow {flow_id!r}: share must be positive, got {share!r}"
            )
        if flow_id in self._flows:
            raise DuplicateFlowError(flow_id)
        if self._backlogged:
            raise ConfigurationError(
                "flows must be registered while the GPS system is idle"
            )
        self._flows[flow_id] = _GPSFlow(flow_id, share)
        self._total_share += share
        # Registration changes every flow's normalisation; refresh the
        # cached phi_i so the hot path never divides by the total again.
        total = self._total_share
        for flow in self._flows.values():
            flow.phi = flow.share / total

    def _flow(self, flow_id):
        try:
            return self._flows[flow_id]
        except KeyError:
            raise UnknownFlowError(flow_id) from None

    def _phi(self, flow):
        """Normalised share (the paper's phi_i, summing to 1)."""
        return flow.phi

    def guaranteed_rate(self, flow_id):
        """r_i = phi_i * r."""
        return self._phi(self._flow(flow_id)) * self.rate

    @property
    def is_idle(self):
        return not self._backlogged

    @property
    def time(self):
        return self._time

    def backlogged_flows(self):
        return set(self._backlogged)

    # ------------------------------------------------------------------
    # Core event processing
    # ------------------------------------------------------------------
    def advance(self, now):
        """Run the fluid system forward to real time ``now``."""
        if now < self._time:
            raise ValueError(
                f"time moved backwards: {now!r} < {self._time!r}"
            )
        empty_events = self._empty_events
        heappop = heapq.heappop
        while self._backlogged:
            # Inline peek of the next valid session-empty event (lazy
            # invalidation of superseded entries) — this runs once per
            # advance even when no event fires, so it must not allocate.
            while empty_events:
                tag, _seq, flow = empty_events[0]
                if flow.backlogged and tag == flow.final_finish_tag:
                    break
                heappop(empty_events)
            else:
                # No session-empty pending (shouldn't happen while
                # backlogged), treat as pure advance.
                break
            # Real duration until V reaches `tag` at slope 1/sum_phi.
            dt = (tag - self._virtual) * self._sum_phi
            t_reach = self._time + dt
            if t_reach <= now:
                self._emit_departures(tag, self._virtual, self._time)
                self._time = t_reach
                self._virtual = tag
                self._leave_backlog(flow)
                heappop(empty_events)
            else:
                break
        if self._backlogged and now > self._time:
            v_new = self._virtual + (now - self._time) / self._sum_phi
            self._emit_departures(v_new, self._virtual, self._time)
            self._virtual = v_new
        self._time = max(self._time, now)

    def _next_empty_event(self):
        """Peek the next valid session-empty event (lazy invalidation)."""
        while self._empty_events:
            tag, _seq, flow = self._empty_events[0]
            if flow.backlogged and tag == flow.final_finish_tag:
                return tag, flow
            heapq.heappop(self._empty_events)
        return None

    def _emit_departures(self, v_new, v_old, t_old):
        """Emit real finish times for packets whose F falls in (v_old, v_new]."""
        pending = self._pending
        if not pending or pending[0][0] > v_new:
            return
        heappop = heapq.heappop
        departed = self._departed
        sum_phi = self._sum_phi
        flows = self._flows
        while pending and pending[0][0] <= v_new:
            tag, _seq, pkt = heappop(pending)
            pkt.finish_time = t_old + (tag - v_old) * sum_phi
            flows[pkt.flow_id].queued -= 1
            departed.append(pkt)

    def _leave_backlog(self, flow):
        flow.backlogged = False
        flow.service_acc += flow.phi * self.rate * (self._virtual - flow.v_enter)
        self._backlogged.discard(flow.flow_id)
        self._sum_phi -= flow.phi
        if not self._backlogged:
            self._sum_phi = 0  # kill numeric residue

    # ------------------------------------------------------------------
    # Arrivals and queries
    # ------------------------------------------------------------------
    def arrive(self, flow_id, length, now):
        """A ``length``-bit packet of ``flow_id`` arrives at ``now``.

        Returns the :class:`GPSPacket` carrying the virtual tags.
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length!r}")
        flow = self._flow(flow_id)
        self.advance(now)
        if not self._backlogged:
            # New system busy period: eqs. (4)-(5) restart V at zero, and
            # every flow's stale finish tag (all served) is irrelevant.
            self._virtual = 0
            for f in self._flows.values():
                f.last_finish_tag = 0
        start = max(flow.last_finish_tag, self._virtual)
        finish = start + length / (flow.phi * self.rate)
        pkt = GPSPacket(next(self._uids), flow_id, length, now, start, finish)
        flow.last_finish_tag = finish
        flow.final_finish_tag = finish
        flow.queued += 1
        seq = next(self._seq)
        heapq.heappush(self._pending, (finish, seq, pkt))
        # The unique seq settles any tie before the heap would ever
        # compare two (uncomparable) flow objects.
        heapq.heappush(self._empty_events, (finish, seq, flow))
        if not flow.backlogged:
            flow.backlogged = True
            flow.v_enter = self._virtual
            self._backlogged.add(flow_id)
            self._sum_phi += flow.phi
        return pkt

    def virtual_time(self, now=None):
        """V_GPS at time ``now`` (advances the system)."""
        if now is not None:
            self.advance(now)
        return self._virtual

    def service_received(self, flow_id, now=None):
        """Cumulative fluid service W_i(0, now) in bits."""
        if now is not None:
            self.advance(now)
        flow = self._flow(flow_id)
        total = flow.service_acc
        if flow.backlogged:
            total += self._phi(flow) * self.rate * (self._virtual - flow.v_enter)
        return total

    def is_backlogged(self, flow_id, now=None):
        if now is not None:
            self.advance(now)
        return self._flow(flow_id).backlogged

    def pop_departures(self):
        """Return and clear the packets that finished since the last call.

        Packets are ordered by (finish_time, arrival order).
        """
        out = self._departed
        self._departed = []
        return out

    def finish_order(self, until=None):
        """Convenience: advance to ``until`` (or drain fully if None) and
        return all departures so far."""
        if until is None:
            # Advance until the system drains: the last session-empty event
            # determines the horizon.
            while self._backlogged:
                event = self._next_empty_event()
                if event is None:
                    break
                tag, _flow = event
                horizon = self._time + (tag - self._virtual) * self._sum_phi
                self.advance(horizon)
        else:
            self.advance(until)
        return self.pop_departures()
