"""WRR — Weighted Round Robin.

The simplest weighted scheduler: visit backlogged flows cyclically, serving
up to ``weight_i`` packets per visit.  O(1) per packet, but fairness is
only packet-granular and only correct for uniform packet sizes (DRR exists
precisely to fix the variable-size case).  WRR is the baseline the paper's
related-work section groups with "low complexity, large WFI" schemes.
"""

from collections import deque

from repro.core.scheduler import PacketScheduler
from repro.errors import ConfigurationError

__all__ = ["WRRScheduler"]


class WRRScheduler(PacketScheduler):
    """Weighted round robin with integer per-visit packet budgets.

    A flow's per-round budget is ``ceil(share / min_share)`` packets, so
    shares keep their relative meaning whatever their absolute scale.
    """

    name = "WRR"

    def __init__(self, rate):
        super().__init__(rate)
        self._active = deque()     # backlogged flows, round-robin order
        self._in_round = set()
        self._current = None
        self._budget = 0
        self._min_share = None

    def _on_flow_added(self, state):
        if state.share != int(state.share) and not isinstance(state.share, int):
            # Non-integer shares are fine; budgets are ceil'ed below.
            pass
        if self._min_share is None or state.share < self._min_share:
            self._min_share = state.share

    def _on_flow_removed(self, state):
        others = [st.share for st in self._flows.values()
                  if st.flow_id != state.flow_id]
        self._min_share = min(others) if others else None

    def _visit_budget(self, state):
        budget = state.share / self._min_share
        whole = int(budget)
        return whole if whole == budget else whole + 1

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if state.flow_id not in self._in_round:
            self._active.append(state.flow_id)
            self._in_round.add(state.flow_id)

    def _select_flow(self, now):
        while True:
            if self._current is not None and self._budget > 0:
                state = self._flows[self._current]
                if state.queue:
                    return state
                self._in_round.discard(self._current)
                self._current = None
            elif self._current is not None:
                # Budget exhausted: requeue at the back of the round.
                self._active.append(self._current)
                self._current = None
            flow_id = self._active.popleft()
            state = self._flows[flow_id]
            if not state.queue:
                self._in_round.discard(flow_id)
                continue
            self._current = flow_id
            self._budget = self._visit_budget(state)

    def _on_dequeued(self, state, packet, now):
        self._budget -= 1
        if not state.queue:
            self._in_round.discard(state.flow_id)
            self._current = None
            self._budget = 0

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Budgets are derived from share / min_share at visit time; only
        # the cached minimum needs refreshing.  The in-progress visit keeps
        # its already-granted budget (the old contract was honoured up to
        # the change instant).
        self._min_share = min(
            (st.share for st in self._flows.values()), default=None
        )

    # Eviction needs no hook: _select_flow already skips flows whose
    # queues drained outside a dequeue (stale round entries).

    def _snapshot_extra(self):
        return {
            "active": list(self._active),
            "in_round": sorted(self._in_round, key=repr),
            "current": self._current,
            "budget": self._budget,
            "min_share": self._min_share,
        }

    def _restore_extra(self, extra, uid_map):
        self._active = deque(extra["active"])
        self._in_round = set(extra["in_round"])
        self._current = extra["current"]
        self._budget = extra["budget"]
        self._min_share = extra["min_share"]
