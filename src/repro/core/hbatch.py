"""Vectorized H-WF2Q+ backend: columnar node state + fused chunk kernels.

:class:`VectorHWF2QPlus` is the hierarchical sibling of
:class:`repro.core.batch.VectorWF2QPlus`: an opt-in float64 backend for
the flattened H-WF2Q+ tree that amortizes the per-packet ARRIVE /
RESET-PATH / RESTART-NODE walks over whole batches.  The exact
(Fraction-capable) :class:`~repro.core.hierarchy.HPFQScheduler` stays
the checkpoint truth — snapshots round-trip through the same node
table, and every fallback (observer attached, buffer limits, subclass,
small chunk) lands on the exact per-packet path.

Columnar layout
---------------
:class:`NodeColumns` extends the ``FlowColumns`` idea to the tree:
parallel ``array('d')`` columns for S / F / V / inv_rate / share keyed
by the dense preorder ``node_id`` from the flattening pass, plus the
static structure columns (parent ids, per-depth level index, CSR
node→root path arrays) that make level-ordered batch math possible
without touching node objects.  Two different roles, split on the
measured finding recorded in ``_HNode``:

* **static columns** (``inv_rate``, ``share``, ``parent``, ``levels``,
  ``path_ids``/``path_off``) are the *source* for vectorized gathers —
  the enqueue kernel reads per-leaf inverse rates with one fancy-index
  load instead of one attribute load per packet;
* **tag columns** (``start``/``finish``/``virtual``) are *mirrors* of
  the ``__slots__`` truth, synced level-by-level on demand
  (:meth:`VectorHWF2QPlus.sync_tag_columns`) for introspection and the
  differential suites.  The per-packet dequeue walk keeps writing
  slots: a packet's leaf→root RESTART is a sequential dependency chain,
  and PR 3 measured ``list[i]``-style indexed state *slower* than slot
  access for exactly that walk, so scattering every tag write into the
  columns would tax the hot path to feed a mirror nobody reads per
  packet.

Batch kernels
-------------
* ``enqueue_batch`` stages every packet that newly heads a leaf under a
  *busy* parent (the common case in a loaded hierarchy) and tags the
  whole group with one vectorized ``S = max(F_old, V_parent)``,
  ``F = S + L * inv_rate`` sweep — numpy when importable, ``array('d')``
  scalar fallback otherwise, both pinned identical by the differential
  suite.  Head tags in H-WF2Q+ depend only on the leaf's previous
  finish tag and the parent's virtual time (never on the arrival
  clock), and a busy parent's virtual time cannot move while arrivals
  are being admitted, so one group may span every arrival between two
  transmission completions.  SEFF eligibility is re-derived for the
  whole group as the vector mask ``S <= V_parent``; heap pushes replay
  in packet order so the policy heaps stay byte-identical to the exact
  path's.
* ``_dequeue_chunk`` fuses RESET-PATH and the bottom-up RESTART into a
  single unconditional walk over the completed leaf's path.  Every node
  on the active chain is busy with a committed head (an ARRIVE cannot
  displace a busy root's head), which statically discharges the
  per-level branches the exact kernel must keep: ``parent.head`` is
  None until this walk sets it, stale-epoch checks cannot fire inside a
  busy period, and the retag rule is always the busy-case
  ``S = F_node``.  The WF2Q+ ``reselect`` (fused re-key + SEFF select +
  eq. 27 threshold) is inlined per level with the same heap operation
  sequence as :meth:`WF2QPlusNodePolicy.reselect`, so tags *and* heap
  layouts match the exact scheduler bit-for-bit on float workloads.

Exactness contract
------------------
Identical expression sequences over float64 make the vector backend
bit-identical to ``HPFQScheduler(spec, float(rate))`` — the
differential suite pins records, tags and heap contents exactly.
Against the *Fraction*-rate exact scheduler the usual float contract
applies: power-of-two shares/rates/lengths stay exact, anything else is
float-approximate (documented tolerance in the tests).
"""

from array import array

from repro.core.batch import HAVE_NUMPY, NUMPY_MIN_CHUNK
from repro.core.hierarchy import (
    HPFQScheduler,
    WF2QPlusNodePolicy,
)
from repro.core.scheduler import (
    BATCH_KERNEL_MIN,
    PacketScheduler,
    ScheduledPacket,
    kernel_sized,
)
from repro.errors import ConfigurationError, HierarchyError

if HAVE_NUMPY:  # pragma: no branch - import guard
    import numpy as _np
else:  # pragma: no cover - exercised by the numpy-less CI leg
    _np = None

__all__ = ["NodeColumns", "VectorHWF2QPlus", "make_vhwf2qplus"]

_INF = float("inf")


class NodeColumns:
    """Parallel per-node columns keyed by dense ``node_id``.

    Float columns are ``array('d')`` buffers (zero-copy numpy views via
    :meth:`view`); structure columns are ``array('l')``.  The tree's
    topology only changes on cold paths (attach/detach), so columns are
    rebuilt wholesale by :meth:`rebuild` rather than grown per node.
    """

    __slots__ = (
        # float64 state columns (S / F / V mirrors + static rate data)
        "start", "finish", "virtual", "inv_rate", "share",
        # static structure: parent ids, per-depth grouping, CSR paths
        "parent", "depth", "levels", "path_ids", "path_off",
        "size",
    )

    def __init__(self):
        self.size = 0
        for name in ("start", "finish", "virtual", "inv_rate", "share"):
            setattr(self, name, array("d"))
        self.parent = array("l")
        self.depth = array("l")
        self.levels = ()
        self.path_ids = array("l")
        self.path_off = array("l", [0])

    def rebuild(self, order):
        """Re-derive every column from ``order`` (nodes by ``node_id``)."""
        size = len(order)
        self.size = size
        self.inv_rate = array("d", (float(node.inv_rate) for node in order))
        self.share = array("d", (float(node.share) for node in order))
        self.start = array("d", bytes(8 * size))
        self.finish = array("d", bytes(8 * size))
        self.virtual = array("d", bytes(8 * size))
        self.parent = array("l", (
            -1 if node.parent is None else node.parent.node_id
            for node in order))
        depth = array("l", (len(node.path) - 1 for node in order))
        self.depth = depth
        levels = [array("l") for _ in range(max(depth, default=-1) + 1)]
        for node in order:
            levels[len(node.path) - 1].append(node.node_id)
        self.levels = tuple(levels)
        path_ids = array("l")
        path_off = array("l", [0])
        for node in order:
            for hop in node.path:
                path_ids.append(hop.node_id)
            path_off.append(len(path_ids))
        self.path_ids = path_ids
        self.path_off = path_off

    def sync_static(self, order):
        """Refresh rate-derived columns after a live reconfiguration."""
        inv_rate = self.inv_rate
        share = self.share
        for node in order:
            node_id = node.node_id
            inv_rate[node_id] = float(node.inv_rate)
            share[node_id] = float(node.share)

    def sync_tags(self, order, epoch):
        """Mirror S/F/V from the slots truth, level by level.

        Nodes whose ``epoch`` predates the current busy period read as
        zero — the same lazily-applied reset ``_touch`` would perform —
        so the columns show the *semantic* tag state, not stale storage.
        """
        start = self.start
        finish = self.finish
        virtual = self.virtual
        for ids in self.levels:
            for node_id in ids:
                node = order[node_id]
                if node.epoch != epoch:
                    start[node_id] = 0.0
                    finish[node_id] = 0.0
                    virtual[node_id] = 0.0
                else:
                    start[node_id] = float(node.start_tag)
                    finish[node_id] = float(node.finish_tag)
                    virtual[node_id] = float(node.virtual)

    def path(self, node_id):
        """The node→root id chain of ``node_id`` (CSR slice)."""
        return self.path_ids[self.path_off[node_id]:
                             self.path_off[node_id + 1]]

    def view(self, name):
        """Zero-copy numpy float64 view of a float column."""
        return _np.frombuffer(getattr(self, name), dtype=_np.float64)


class VectorHWF2QPlus(HPFQScheduler):
    """Float64 columnar H-WF2Q+ (see the module docstring).

    Drop-in for ``HPFQScheduler(spec, rate, policy="wf2qplus")`` with the
    link rate coerced to float; only the homogeneous WF2Q+ policy is
    supported (the fused kernels inline its reselect).  Subclasses and
    observed instances transparently fall back to the exact paths.
    """

    def __init__(self, spec, rate, policy="wf2qplus", policy_overrides=None):
        if self._resolve_policy(policy) is not WF2QPlusNodePolicy:
            raise ConfigurationError(
                f"{type(self).__name__} supports only the wf2qplus node "
                f"policy, got {policy!r}; use HPFQScheduler for other "
                f"hierarchies"
            )
        if policy_overrides:
            raise ConfigurationError(
                f"{type(self).__name__} does not accept policy overrides "
                f"(the fused kernels inline the WF2Q+ reselect at every "
                f"interior node)"
            )
        self._cols = None
        self._node_order = ()
        #: Packets that went through the vector kernels (vs the exact
        #: per-packet fallbacks) — surfaced by :meth:`vector_stats`.
        self._vector_enqueued = 0
        self._vector_dequeued = 0
        super().__init__(spec, float(rate), policy="wf2qplus")
        self.name = "VH-WF2Q+"
        self._cols = NodeColumns()
        self._rebuild_columns()

    # ------------------------------------------------------------------
    # Column maintenance (cold paths)
    # ------------------------------------------------------------------
    def _rebuild_columns(self):
        order = sorted(self._nodes.values(), key=lambda node: node.node_id)
        self._node_order = order
        self._cols.rebuild(order)

    def _flatten(self):
        super()._flatten()
        if self._cols is not None:  # None only during __init__'s build
            self._rebuild_columns()

    def _rebase_subtree(self, top):
        super()._rebase_subtree(top)
        if self._cols is not None:
            self._cols.sync_static(self._node_order)

    def _restore_extra(self, extra, uid_map):
        # Restored snapshots may carry different shares/rates; topology
        # is name-checked identical, so a static resync suffices.
        super()._restore_extra(extra, uid_map)
        self._cols.sync_static(self._node_order)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_columns(self):
        """The :class:`NodeColumns` block (tag mirrors may be stale —
        call :meth:`sync_tag_columns` first for a coherent view)."""
        return self._cols

    def sync_tag_columns(self):
        """Mirror every node's S/F/V into the columns; returns them."""
        self._cols.sync_tags(self._node_order, self._tree_epoch)
        return self._cols

    def level_tags(self, depth):
        """``[(name, S, F, V), ...]`` for every node at ``depth``, in
        dense-id order — the level-synchronous view the differential
        suite compares against the recursive exact walk."""
        cols = self.sync_tag_columns()
        order = self._node_order
        return [
            (order[node_id].name, cols.start[node_id],
             cols.finish[node_id], cols.virtual[node_id])
            for node_id in cols.levels[depth]
        ]

    def vector_stats(self):
        """Vector-vs-exact engagement counters for ``stats --pipeline``."""
        return {
            "vector_enqueued": self._vector_enqueued,
            "vector_dequeued": self._vector_dequeued,
            "exact_enqueued": self._enqueues - self._vector_enqueued,
            "exact_dequeued": self._dequeues - self._vector_dequeued,
            "drain_chunk": self.drain_chunk,
        }

    # ------------------------------------------------------------------
    # Batched ARRIVE
    # ------------------------------------------------------------------
    def enqueue_batch(self, packets, now=None):
        if (type(self) is not VectorHWF2QPlus or self._obs is not None
                or self._buffer_limits or self._shared_limit is not None
                or not kernel_sized(packets)):
            return PacketScheduler.enqueue_batch(self, packets, now)
        # Same skeleton as the exact HPFQ kernel, plus head staging: a
        # packet that newly heads a leaf under a busy parent adopts the
        # head *immediately* (so a same-batch follower takes the plain
        # FIFO-append path) but defers tags + SEFF classification to the
        # vectorized flush.  The flush must run before anything that
        # could read the staged leaves' tags or heaps: a RESET-PATH, an
        # exact-path fallback, or the end of the batch.
        flows = self._flows
        nodes = self._nodes
        backlogged = self._backlogged
        clock = self._clock
        backlog = self._backlog_packets
        backlog_bits = self._backlog_bits
        arrivals = enqueues = 0
        accepted = 0
        enqueue = self.enqueue
        flush = self._flush_heads
        pending = []
        stage = pending.append
        for packet in packets:
            t = packet.arrival_time if now is None else now
            if t is None:
                t = clock
            if self._in_flight is not None and t >= self._free_at:
                if pending:
                    flush(pending)
                    pending = []
                    stage = pending.append
                # RESET-PATH's drained branch reads _backlog_packets.
                self._backlog_packets = backlog
                self._complete_transmission()
            state = flows.get(packet.flow_id)
            length = packet.length
            if (state is None or t < clock
                    or (length <= 0 if type(length) is int
                        else type(length) is not float
                        or not 0.0 < length < _INF)):
                if pending:
                    flush(pending)
                    pending = []
                    stage = pending.append
                self._clock = clock
                self._arrivals += arrivals
                self._enqueues += enqueues
                self._backlog_packets = backlog
                self._backlog_bits = backlog_bits
                arrivals = enqueues = 0
                if enqueue(packet, t):
                    accepted += 1
                clock = self._clock
                backlog = self._backlog_packets
                backlog_bits = self._backlog_bits
                continue
            leaf = nodes[packet.flow_id]
            if leaf.head is None:
                parent = leaf.path[1]
                if not parent.busy or not parent.policy.fast:
                    # Idle parent: ARRIVE restarts the chain bottom-up —
                    # inherently sequential, take the exact path.
                    if pending:
                        flush(pending)
                        pending = []
                        stage = pending.append
                    self._clock = clock
                    self._arrivals += arrivals
                    self._enqueues += enqueues
                    self._backlog_packets = backlog
                    self._backlog_bits = backlog_bits
                    arrivals = enqueues = 0
                    if enqueue(packet, t):
                        accepted += 1
                    clock = self._clock
                    backlog = self._backlog_packets
                    backlog_bits = self._backlog_bits
                    continue
                leaf.head = packet
                stage((leaf, parent, length))
            if packet.arrival_time is None:
                packet.arrival_time = t
            clock = t
            arrivals += 1
            queue = state.queue
            if not queue:
                # The leaf's last packet is still in flight (RESET-PATH
                # is lazy) or the head was just staged above; either way
                # the flow re-enters the backlogged index here.
                backlogged[packet.flow_id] = True
            queue.append(packet)
            state.bits_queued += length
            backlog += 1
            backlog_bits += length
            enqueues += 1
            accepted += 1
        if pending:
            flush(pending)
        self._clock = clock
        self._arrivals += arrivals
        self._enqueues += enqueues
        self._backlog_packets = backlog
        self._backlog_bits = backlog_bits
        self._vector_enqueued += enqueues
        self._count_batch(accepted)
        return accepted

    def _flush_heads(self, pending):
        """Tag + classify a group of staged ``(leaf, parent, length)``.

        Vectorized ARRIVE tail: ``S = max(F_old, V_parent)``,
        ``F = S + L * inv_rate`` over the whole group, with stale-epoch
        leaves reading ``F_old = 0`` (the lazy busy-period reset), then
        the SEFF mask ``S <= V_parent`` recomputed en masse.  Heap
        pushes replay in packet order so the policy heaps end up
        byte-identical to the sequential exact path.  The numpy and
        ``array('d')``-scalar branches evaluate the same expression
        sequence and are pinned identical by the differential suite.
        """
        epoch = self._tree_epoch
        m = len(pending)
        if HAVE_NUMPY and m >= NUMPY_MIN_CHUNK:
            cols = self._cols
            idx = _np.fromiter(
                (leaf.node_id for leaf, _, _ in pending),
                dtype=_np.intp, count=m)
            lengths = _np.fromiter(
                (float(length) for _, _, length in pending),
                dtype=_np.float64, count=m)
            old_finish = _np.fromiter(
                (leaf.finish_tag for leaf, _, _ in pending),
                dtype=_np.float64, count=m)
            stale = _np.fromiter(
                (leaf.epoch != epoch for leaf, _, _ in pending),
                dtype=bool, count=m)
            if stale.any():
                old_finish = _np.where(stale, 0.0, old_finish)
            parent_v = _np.fromiter(
                (parent.virtual for _, parent, _ in pending),
                dtype=_np.float64, count=m)
            start = _np.maximum(old_finish, parent_v)
            finish = start + lengths * cols.view("inv_rate")[idx]
            eligible = start <= parent_v
            cols.view("start")[idx] = start
            cols.view("finish")[idx] = finish
            for k in range(m):
                leaf, parent, _ = pending[k]
                # float() keeps tag slots and heap keys plain Python
                # floats (numpy scalars compare slower and would leak
                # into records and snapshots).
                s = float(start[k])
                f = float(finish[k])
                if leaf.epoch != epoch:
                    leaf.virtual = 0
                    leaf.epoch = epoch
                leaf.start_tag = s
                leaf.finish_tag = f
                pol = parent.policy
                if eligible[k]:
                    pol._ineligible.discard(leaf)
                    pol._eligible.push_or_update(
                        leaf, (f, leaf.child_index))
                else:
                    pol._eligible.discard(leaf)
                    pol._ineligible.push_or_update(
                        leaf, (s, leaf.child_index))
            return
        for leaf, parent, length in pending:
            if leaf.epoch != epoch:
                leaf.finish_tag = 0
                leaf.virtual = 0
                leaf.epoch = epoch
            start = leaf.finish_tag
            parent_v = parent.virtual
            if parent_v > start:
                start = parent_v
            finish = start + length * leaf.inv_rate
            leaf.start_tag = start
            leaf.finish_tag = finish
            pol = parent.policy
            if start <= parent_v:
                pol._ineligible.discard(leaf)
                pol._eligible.push_or_update(
                    leaf, (finish, leaf.child_index))
            else:
                pol._eligible.discard(leaf)
                pol._ineligible.push_or_update(
                    leaf, (start, leaf.child_index))

    # ------------------------------------------------------------------
    # Batched dequeue: fused RESET-PATH + RESTART chunk kernel
    # ------------------------------------------------------------------
    def dequeue_batch(self, n, now=None):
        # Re-evaluated on *every* call (like the enqueue guard above): an
        # observer or buffer cap attached mid-run must disengage the
        # vector kernel from the next batch onward, and drop-policy
        # evictions retag leaves behind the staged columns' back.
        if (type(self) is VectorHWF2QPlus and self._obs is None
                and not self._buffer_limits and self._shared_limit is None
                and n >= BATCH_KERNEL_MIN):
            return self._dequeue_chunk(n, None, now, [])
        return PacketScheduler.dequeue_batch(self, n, now)

    def drain_until(self, limit, now=None, into=None):
        if (type(self) is VectorHWF2QPlus and self._obs is None
                and not self._buffer_limits and self._shared_limit is None):
            return self._dequeue_chunk(
                self.drain_chunk, limit, now, [] if into is None else into)
        return PacketScheduler.drain_until(self, limit, now, into)

    def _dequeue_chunk(self, n, limit, now, records):
        """Amortized dequeue with the tree walk fused into the loop.

        Shared contract with the other ``_dequeue_chunk`` kernels.  The
        RESET-PATH + RESTART of each completed packet runs as one
        unconditional walk over the completed leaf's path, exploiting
        the active-chain invariant (every node on it is busy with a
        committed head and a current epoch — see the module docstring):
        no ``parent.head`` probes, no epoch touches, busy-case retag
        only, and the WF2Q+ reselect inlined with the exact heap
        operation sequence of :meth:`WF2QPlusNodePolicy.reselect`.
        """
        backlog = self._backlog_packets
        if backlog == 0 or (n is not None and n <= 0):
            self._count_batch(0)
            return records
        clock = self._clock
        if now is None:
            now = clock if clock > self._free_at else self._free_at
        elif now < clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {clock!r}"
            )
        if n is None:
            n = backlog
        nodes = self._nodes
        backlogged = self._backlogged
        rate = self._rate
        root = self._root
        backlog_bits = self._backlog_bits
        append = records.append
        in_flight = self._in_flight
        if in_flight is not None:
            leaf = nodes[in_flight.flow_id]
            path = leaf.path
        else:
            leaf = path = None
        count = 0
        try:
            while count < n and backlog:
                if in_flight is not None:
                    in_flight = None
                    # RESET at the leaf: adopt the next FIFO packet (the
                    # busy-case retag S = F) or clear the logical head.
                    queue = leaf.flow_state.queue
                    if queue:
                        head = queue[0]
                        leaf.head = head
                        start = leaf.finish_tag
                        leaf.start_tag = start
                        leaf.finish_tag = start + head.length * leaf.inv_rate
                        rekeyed = leaf
                    else:
                        leaf.head = None
                        path[1].policy.child_head_cleared(leaf)
                        rekeyed = None
                    plen = len(path)
                    index = 1
                    while True:
                        node = path[index]
                        pol = node.policy
                        eligible = pol._eligible
                        ineligible = pol._ineligible
                        eent = eligible.entries
                        ient = ineligible.entries
                        # -- inlined WF2QPlusNodePolicy.reselect --
                        if rekeyed is not None:
                            rs = rekeyed.start_tag
                            in_eligible = rekeyed in eligible.pos
                            if len(eent) > (1 if in_eligible else 0):
                                threshold = node.virtual
                            else:
                                smin = rs
                                if ient and ient[0][0][0] < smin:
                                    smin = ient[0][0][0]
                                threshold = node.virtual
                                if smin > threshold:
                                    threshold = smin
                            if rs > threshold:
                                ikey = (rs, rekeyed.child_index)
                                if in_eligible:
                                    if eent[0][2] is rekeyed:
                                        if ient and ient[0][0][0] <= threshold:
                                            child = ient[0][2]
                                            ineligible.replace_top(
                                                rekeyed, ikey)
                                            eligible.replace_top(
                                                child,
                                                (child.finish_tag,
                                                 child.child_index))
                                        else:
                                            eligible.move_top_to(
                                                ineligible, ikey)
                                    else:
                                        eligible.remove(rekeyed)
                                        ineligible.push(rekeyed, ikey)
                                else:
                                    ineligible.push(rekeyed, ikey)
                            elif in_eligible:
                                eligible.update(
                                    rekeyed,
                                    (rekeyed.finish_tag,
                                     rekeyed.child_index))
                            else:
                                eligible.push(
                                    rekeyed,
                                    (rekeyed.finish_tag,
                                     rekeyed.child_index))
                        elif eent:
                            threshold = node.virtual
                        elif ient:
                            threshold = node.virtual
                            smin = ient[0][0][0]
                            if smin > threshold:
                                threshold = smin
                        else:
                            threshold = None
                        if threshold is not None:
                            while ient and ient[0][0][0] <= threshold:
                                child = ient[0][2]
                                ineligible.move_top_to(
                                    eligible,
                                    (child.finish_tag, child.child_index))
                            child = eent[0][2]
                        else:
                            child = None
                        # -- RESTART bookkeeping at this level --
                        index += 1
                        if child is not None:
                            node.active_child = child
                            head = child.head
                            node.head = head
                            dt = head.length * node.inv_rate
                            if index < plen:
                                # Busy-case retag (the node never went
                                # idle inside the walk): S = F.
                                start = node.finish_tag
                                node.start_tag = start
                                node.finish_tag = start + dt
                            # Fused on_select: V <- threshold + L/r.
                            node.virtual = threshold + dt
                            node.reference += dt
                            if index == plen:
                                break
                            rekeyed = node
                        else:
                            node.active_child = None
                            node.busy = False
                            node.head = None
                            if index == plen:
                                break
                            path[index].policy.child_head_cleared(node)
                            rekeyed = None
                head = root.head
                if head is None:  # pragma: no cover - safety net
                    raise HierarchyError(
                        "H-PFQ invariant violated: backlog exists but no "
                        "selection"
                    )
                flow_id = head.flow_id
                leaf = nodes[flow_id]
                state = leaf.flow_state
                queue = state.queue
                packet = queue.popleft()
                if packet is not head:  # pragma: no cover - safety net
                    raise HierarchyError(
                        "H-PFQ invariant violated: dequeued packet is not "
                        "the root head"
                    )
                length = packet.length
                state.bits_queued -= length
                backlog -= 1
                backlog_bits -= length
                if not queue:
                    del backlogged[flow_id]
                finish = now + length / rate
                path = leaf.path
                append(ScheduledPacket(packet, now, finish,
                                       leaf.start_tag, leaf.finish_tag))
                leaf.reference += length / leaf.rate
                in_flight = packet
                count += 1
                clock = now
                now = finish
                if limit is not None and finish >= limit:
                    break
        finally:
            self._in_flight = in_flight
            self._clock = clock
            self._free_at = now if count else self._free_at
            self._backlog_packets = backlog
            self._backlog_bits = backlog_bits
            self._dequeues += count
            self._vector_dequeued += count
            self._count_batch(count)
        return records


def make_vhwf2qplus(spec, rate):
    """Vector-backend H-WF2Q+ (float64 columnar hierarchy)."""
    return VectorHWF2QPlus(spec, rate)
