"""repro — Hierarchical Packet Fair Queueing algorithms.

A from-scratch reproduction of *Hierarchical Packet Fair Queueing
Algorithms* (Bennett & Zhang, SIGCOMM 1996): the WF2Q+ scheduler, the H-PFQ
construction (H-WF2Q+, H-WFQ, H-SCFQ, H-SFQ), fluid GPS / H-GPS references,
the classical baselines (WFQ, WF2Q, SCFQ, SFQ, DRR, FIFO), a discrete-event
simulator with traffic sources and a small TCP Reno model, and the paper's
delay/fairness analysis toolkit (B-WFI, T-WFI, SBI, Theorems 1-4 bounds).

Quickstart::

    from repro import WF2QPlusScheduler, Packet

    sched = WF2QPlusScheduler(rate=1_000_000)
    sched.add_flow("voice", share=3)
    sched.add_flow("bulk", share=1)
    sched.enqueue(Packet("voice", length=8_000), now=0.0)
    sched.enqueue(Packet("bulk", length=8_000), now=0.0)
    record = sched.dequeue()          # -> ScheduledPacket for "voice"

See ``examples/quickstart.py`` for the guided tour and DESIGN.md for the
paper-to-module map.
"""

from repro.core import (
    DRRScheduler,
    FFQScheduler,
    FIFOScheduler,
    FlowConfig,
    GPSFluidSystem,
    HGPSFluidSystem,
    HPFQScheduler,
    LeakyBucket,
    Packet,
    PacketScheduler,
    SCFQScheduler,
    SFQScheduler,
    ScheduledPacket,
    VirtualClockScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
    WRRScheduler,
    make_hscfq,
    make_hsfq,
    make_hwf2qplus,
    make_hwfq,
)
from repro.config import HierarchySpec, NodeSpec, leaf, node
from repro.errors import (
    ConfigurationError,
    EmptySchedulerError,
    HierarchyError,
    InvariantViolation,
    ReproError,
    SchedulerError,
    SimulationError,
    UnknownFlowError,
)

__version__ = "1.0.0"

__all__ = [
    "Packet",
    "FlowConfig",
    "LeakyBucket",
    "PacketScheduler",
    "ScheduledPacket",
    "FIFOScheduler",
    "DRRScheduler",
    "GPSFluidSystem",
    "WFQScheduler",
    "WF2QScheduler",
    "WF2QPlusScheduler",
    "SCFQScheduler",
    "SFQScheduler",
    "VirtualClockScheduler",
    "WRRScheduler",
    "FFQScheduler",
    "HGPSFluidSystem",
    "HPFQScheduler",
    "HierarchySpec",
    "NodeSpec",
    "leaf",
    "node",
    "make_hwf2qplus",
    "make_hwfq",
    "make_hscfq",
    "make_hsfq",
    "ReproError",
    "ConfigurationError",
    "SchedulerError",
    "UnknownFlowError",
    "EmptySchedulerError",
    "HierarchyError",
    "InvariantViolation",
    "SimulationError",
    "__version__",
]
