"""Unit helpers for rates, sizes, and times.

The simulator works in *bits* for packet sizes, *bits per second* for rates,
and *seconds* for time.  These helpers make experiment scripts readable
(``mbps(10)`` instead of ``10_000_000``) and centralise the conventions so a
unit mistake in one experiment cannot silently disagree with another.

All helpers return plain numbers, so they compose with either ``float`` or
:class:`fractions.Fraction` inputs (the schedulers are numeric-type-agnostic).
"""

__all__ = [
    "kbps",
    "mbps",
    "gbps",
    "bytes_",
    "kilobytes",
    "ms",
    "us",
    "transmission_time",
    "BITS_PER_BYTE",
]

BITS_PER_BYTE = 8


def kbps(value):
    """Convert kilobits/second to bits/second."""
    return value * 1_000


def mbps(value):
    """Convert megabits/second to bits/second."""
    return value * 1_000_000


def gbps(value):
    """Convert gigabits/second to bits/second."""
    return value * 1_000_000_000


def bytes_(value):
    """Convert bytes to bits (trailing underscore avoids the builtin)."""
    return value * BITS_PER_BYTE


def kilobytes(value):
    """Convert kilobytes (1024 bytes, as the paper's 8 KB packets) to bits."""
    return value * 1024 * BITS_PER_BYTE


def ms(value):
    """Convert milliseconds to seconds."""
    return value / 1_000


def us(value):
    """Convert microseconds to seconds."""
    return value / 1_000_000


def transmission_time(length_bits, rate_bps):
    """Time to serialise ``length_bits`` onto a link of ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    return length_bits / rate_bps
