"""Timing, persistence and comparison machinery for the bench harness.

A benchmark run produces a list of :class:`BenchPoint` — one per
(scenario, scheduler, params) combination — which serialises to::

    {
      "version": 1,
      "generated_at": "2026-01-01T00:00:00Z",
      "git_rev": "abc1234",
      "dirty": false,
      "python": "3.12.1",
      "numpy": "2.4.6",
      "platform": {"system": "Linux", "release": "...", "machine": "x86_64",
                   "processor": "...", "cpu_count": 8},
      "scenarios": [
        {"scenario": "saturated_churn", "scheduler": "WF2Q+",
         "params": {"flows": 1024}, "packets": 20000,
         "ns_per_packet": 1234.5, "packets_per_sec": 810045.4},
        ...
      ]
    }

``platform`` records where the numbers were measured (regression ratios
are only meaningful against a baseline from the same machine), and
``packets_per_sec`` is the derived throughput ``1e9 / ns_per_packet`` —
redundant on purpose, so dashboards need no arithmetic.

Comparison is keyed on (scenario, scheduler, params) so baselines stay
valid when scenarios are added or reordered.  A point regresses when::

    new.ns_per_packet > (1 + threshold) * old.ns_per_packet

with ``threshold`` defaulting to 0.25.  Wall-clock noise is tamed two
ways: each measurement is best-of-``repeats`` (the *minimum* over repeat
runs — the run least disturbed by the machine), and CI uses ``--quick``
workloads sized so a single point still executes thousands of packets.
"""

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field

__all__ = [
    "BenchPoint",
    "SCHEMA_VERSION",
    "best_of",
    "compare",
    "format_compare",
    "format_markdown",
    "format_table",
    "load",
    "point_key",
    "save",
    "to_payload",
]

SCHEMA_VERSION = 1

#: Default regression threshold: fail on >25 % per-packet-cost growth.
DEFAULT_THRESHOLD = 0.25


@dataclass
class BenchPoint:
    """One measured benchmark point."""

    scenario: str
    scheduler: str
    params: dict = field(default_factory=dict)
    packets: int = 0
    ns_per_packet: float = 0.0

    @property
    def packets_per_sec(self):
        """Derived throughput: packets transmitted per wall-clock second."""
        if self.ns_per_packet <= 0:
            return 0.0
        return 1e9 / self.ns_per_packet

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "scheduler": self.scheduler,
            "params": dict(self.params),
            "packets": self.packets,
            "ns_per_packet": round(self.ns_per_packet, 1),
            "packets_per_sec": round(self.packets_per_sec, 1),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            scenario=data["scenario"],
            scheduler=data["scheduler"],
            params=dict(data.get("params", {})),
            packets=int(data.get("packets", 0)),
            ns_per_packet=float(data["ns_per_packet"]),
        )


def merge_best(*point_lists):
    """Merge point lists, keeping the cheapest measurement per key.

    Used by the CLI's noise-retry pass: a regressed scenario is measured
    again and the minimum cost per point wins (outside interference only
    ever adds time, so the minimum is the most faithful sample).
    """
    best = {}
    order = []
    for points in point_lists:
        for p in points:
            key = point_key(p)
            held = best.get(key)
            if held is None:
                best[key] = p
                order.append(key)
            elif p.ns_per_packet < held.ns_per_packet:
                best[key] = p
    return [best[key] for key in order]


def point_key(point):
    """Stable identity of a point across runs (params order-insensitive)."""
    if isinstance(point, BenchPoint):
        scenario, scheduler, params = (
            point.scenario, point.scheduler, point.params)
    else:
        scenario = point["scenario"]
        scheduler = point["scheduler"]
        params = point.get("params", {})
    return (scenario, scheduler, json.dumps(params, sort_keys=True))


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def best_of(fn, repeats=3):
    """Run ``fn`` ``repeats`` times; return its minimum result.

    ``fn`` must return a cost (ns/packet).  The minimum — not the mean —
    is the standard noise reducer for wall-clock microbenchmarks: outside
    interference only ever adds time.
    """
    return min(fn() for _ in range(max(1, repeats)))


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def _git_rev():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _git_dirty():
    """True when the worktree has uncommitted changes, None if unknown.

    A baseline stamped ``"dirty": true`` was measured against code that
    no commit can reproduce — the provenance a reviewer needs before
    trusting (or refreshing) the committed numbers.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return bool(out.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    return None


def platform_info():
    """Where the numbers were measured (regressions only compare within
    one machine; the provenance makes cross-machine diffs self-evident)."""
    return {
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
    }


def to_payload(points):
    """Build the JSON document for a list of points."""
    from repro.core.batch import numpy_version

    return {
        "version": SCHEMA_VERSION,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": _git_rev(),
        # True = measured against uncommitted changes; see _git_dirty.
        "dirty": _git_dirty(),
        "python": sys.version.split()[0],
        # None on numpy-less hosts: the columnar kernels then ran their
        # pure-array lanes, which is provenance a baseline must carry.
        "numpy": numpy_version(),
        "platform": platform_info(),
        "scenarios": [p.to_dict() for p in points],
    }


def save(points, path):
    """Write the points to ``path``; returns the payload written."""
    payload = to_payload(points)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return payload


def load(path):
    """Read a benchmark JSON document."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if "scenarios" not in payload:
        raise ValueError(f"{path}: not a bench document (no 'scenarios')")
    return payload


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def compare(baseline, current, threshold=DEFAULT_THRESHOLD,
            scenario_thresholds=None):
    """Compare two payloads; return (rows, regressions).

    ``rows`` is a list of dicts (one per current point) with ``old``,
    ``new``, ``ratio`` and ``status`` in {"ok", "improved", "regression",
    "new"}; ``regressions`` is the subset of rows whose cost grew by more
    than the applicable threshold (fractional, e.g. 0.25 for +25 %).
    ``improved`` marks the mirror image — cost *shrank* by more than the
    threshold — so genuine wins are reported, not silently folded into
    "ok" (and a stale baseline becomes visible).

    ``scenario_thresholds`` optionally overrides the threshold per
    scenario name (``{"sharded_pipeline": 0.6}``): whole-run wall-clock
    scenarios are inherently noisier than the scheduler-only inner loops
    and get looser gates without loosening everything else.
    """
    overrides = scenario_thresholds or {}
    old_index = {point_key(p): p for p in baseline.get("scenarios", [])}
    rows = []
    for entry in current.get("scenarios", []):
        key = point_key(entry)
        old = old_index.pop(key, None)
        limit = overrides.get(entry["scenario"], threshold)
        row = {
            "scenario": entry["scenario"],
            "scheduler": entry["scheduler"],
            "params": entry.get("params", {}),
            "new": float(entry["ns_per_packet"]),
            "threshold": limit,
        }
        if old is None:
            row.update(old=None, ratio=None, status="new")
        else:
            old_cost = float(old["ns_per_packet"])
            ratio = row["new"] / old_cost if old_cost > 0 else float("inf")
            if ratio > 1 + limit:
                status = "regression"
            elif ratio < 1 / (1 + limit):
                status = "improved"
            else:
                status = "ok"
            row.update(old=old_cost, ratio=ratio, status=status)
        rows.append(row)
    for key, old in old_index.items():  # points the new run no longer has
        rows.append({
            "scenario": old["scenario"],
            "scheduler": old["scheduler"],
            "params": old.get("params", {}),
            "old": float(old["ns_per_packet"]),
            "new": None, "ratio": None, "status": "missing",
        })
    regressions = [r for r in rows if r["status"] == "regression"]
    return rows, regressions


def _params_str(params):
    return ",".join(f"{k}={v}" for k, v in sorted(params.items())) or "-"


def format_table(points):
    """Plain-text table of a run's points."""
    lines = [f"{'scenario':18s} {'scheduler':16s} {'params':22s} "
             f"{'packets':>8s} {'ns/pkt':>10s}"]
    for p in points:
        lines.append(
            f"{p.scenario:18s} {p.scheduler:16s} "
            f"{_params_str(p.params):22s} {p.packets:8d} "
            f"{p.ns_per_packet:10.0f}")
    return "\n".join(lines)


def format_markdown(points):
    """GitHub-flavoured markdown table (for the README)."""
    lines = [
        "| scenario | scheduler | params | ns/packet |",
        "|---|---|---|---:|",
    ]
    for p in points:
        lines.append(
            f"| {p.scenario} | {p.scheduler} | "
            f"{_params_str(p.params)} | {p.ns_per_packet:.0f} |")
    return "\n".join(lines)


def format_compare(rows, threshold=DEFAULT_THRESHOLD):
    """Plain-text report of a comparison (one line per point)."""
    lines = [f"{'scenario':18s} {'scheduler':16s} {'params':22s} "
             f"{'old':>9s} {'new':>9s} {'ratio':>7s}  status"]
    for r in rows:
        old = f"{r['old']:.0f}" if r.get("old") is not None else "-"
        new = f"{r['new']:.0f}" if r.get("new") is not None else "-"
        ratio = f"{r['ratio']:.2f}x" if r.get("ratio") is not None else "-"
        lines.append(
            f"{r['scenario']:18s} {r['scheduler']:16s} "
            f"{_params_str(r['params']):22s} {old:>9s} {new:>9s} "
            f"{ratio:>7s}  {r['status']}")
    n_reg = sum(1 for r in rows if r["status"] == "regression")
    n_imp = sum(1 for r in rows if r["status"] == "improved")
    lines.append("")
    if n_imp:
        lines.append(
            f"note: {n_imp} point(s) improved by more than "
            f"{threshold:.0%} — consider refreshing the baseline")
    if n_reg:
        lines.append(
            f"FAIL: {n_reg} point(s) regressed by more than "
            f"{threshold:.0%}")
    else:
        lines.append(f"OK: no point regressed by more than {threshold:.0%}")
    return "\n".join(lines)
