"""repro.bench — hot-path performance regression harness.

The package measures per-packet scheduling cost (``ns/packet``) for a set
of named workload scenarios and persists the points in a machine-readable
JSON document (``BENCH_core.json`` at the repo root is the committed
baseline).  A later run can be compared against that baseline with
:func:`compare`, which flags any point whose per-packet cost regressed by
more than a configurable threshold (25 % by default) — the CI perf-smoke
job runs exactly that via ``python -m repro bench --quick --compare``.

Layout
------
:mod:`repro.bench.harness`
    Timing machinery (best-of-``repeats`` wall-clock measurement), the
    JSON schema (:func:`to_payload` / :func:`save` / :func:`load`),
    baseline comparison (:func:`compare`) and table formatting.
:mod:`repro.bench.scenarios`
    The named scenarios: ``saturated_churn`` (every flow always
    backlogged, N-sweep), ``bursty_onoff`` (small bursts over a large
    flow population — every burst crosses a busy-period boundary),
    ``hierarchy`` (H-WF2Q+ depth × fanout sweep) and ``zoo`` (every
    scheduler in the zoo on one fixed workload).
:mod:`repro.bench.parallel`
    Process-parallel sweep execution: ``run_scenarios_parallel`` fans
    the scenario grid over a multiprocessing pool (``python -m repro
    bench --jobs N``) and ``parallel_map`` gives the experiment builders
    the same fan-out.
"""

from repro.bench.harness import (
    BenchPoint,
    compare,
    format_compare,
    format_markdown,
    format_table,
    load,
    merge_best,
    point_key,
    save,
    to_payload,
)
from repro.bench.parallel import parallel_map, run_scenarios_parallel
from repro.bench.scenarios import (
    CHUNK_AWARE,
    SCENARIOS,
    autotuned_chunk,
    run_scenarios,
)

__all__ = [
    "BenchPoint",
    "CHUNK_AWARE",
    "SCENARIOS",
    "autotuned_chunk",
    "compare",
    "format_compare",
    "format_markdown",
    "format_table",
    "load",
    "merge_best",
    "parallel_map",
    "point_key",
    "run_scenarios",
    "run_scenarios_parallel",
    "save",
    "to_payload",
]
