"""Parallel fan-out of benchmark scenarios across worker processes.

``run_scenarios_parallel`` distributes whole scenarios (the natural unit:
each owns its schedulers and timing loops) over a ``multiprocessing``
pool and merges the resulting :class:`~repro.bench.harness.BenchPoint`
lists back *in request order*, so the output is byte-compatible with the
sequential :func:`~repro.bench.scenarios.run_scenarios` — same points,
same ordering, only the ``ns_per_packet`` values differ by measurement
noise.

Spawn-safety: workers receive only picklable ``(name, quick, seed,
chunk)`` tuples and re-import the scenario registry themselves, so the default
``spawn`` start method works everywhere (macOS, Windows, and any future
``forkserver`` configuration).  Each worker seeds :mod:`random` with a
seed derived deterministically from the scenario *name and its position
in the request* — never from the worker id or completion order — so any
scenario that draws randomness produces the same workload no matter
which process runs it, at any ``--jobs`` level.  Mixing the request
index in makes the seeds collision-safe: two distinct names whose crc32
happens to collide still get distinct seeds within one sweep.  Duplicate
names are rejected outright — silently reusing a seed (or an index-split
of one) would make "the same scenario twice" measure two different
workloads.

Timing caveat: points measured in concurrent processes contend for cores,
so per-packet costs from a parallel sweep are noisier than a sequential
run.  Use ``--jobs`` for broad sweeps and quick CI smoke runs; produce
committed baselines sequentially.
"""

import multiprocessing
import os
import random
import zlib

__all__ = ["parallel_map", "run_scenarios_parallel", "scenario_seed"]

#: Base value mixed into every per-scenario seed (stable across runs).
_SEED_BASE = 0x5EED

#: Default multiprocessing start method — spawn works on every platform
#: and never inherits accidental state from the parent.
_DEFAULT_START = "spawn"


#: Odd multiplier (golden-ratio based) spreading the index bits so that
#: consecutive indices perturb the whole 32-bit word, not just the low bits.
_INDEX_MIX = 0x9E3779B9


def scenario_seed(name, index=0, base=_SEED_BASE):
    """Deterministic 32-bit seed for a scenario.

    Derived from the scenario *name* (crc32) mixed with its *index* in
    the request, so two distinct names with colliding checksums cannot
    share a seed within one sweep.  ``index=0`` (the default) keeps the
    historical name-only seeds for single-scenario callers.
    """
    mixed = zlib.crc32(name.encode("utf-8")) ^ base
    mixed ^= (index * _INDEX_MIX) & 0xFFFFFFFF
    return mixed & 0xFFFFFFFF


def _run_scenario(job):
    """Pool worker: run one scenario (top-level, so spawn can pickle it)."""
    name, quick, seed, chunk = job
    from repro.bench.scenarios import CHUNK_AWARE, SCENARIOS

    random.seed(seed)
    if name in CHUNK_AWARE:
        return name, SCENARIOS[name](quick, chunk=chunk)
    return name, SCENARIOS[name](quick)


def _resolve_jobs(jobs, n_tasks):
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def run_scenarios_parallel(names=None, quick=False, jobs=None,
                           progress=None, mp_context=None, chunk=None):
    """Run the named scenarios across ``jobs`` processes; return the points.

    Drop-in parallel variant of
    :func:`repro.bench.scenarios.run_scenarios`: identical validation,
    identical point ordering (request order, not completion order).
    ``jobs=None`` uses the CPU count; ``jobs<=1`` degrades to the
    sequential runner (no pool, no pickling requirements).
    ``mp_context`` overrides the start method (tests use ``"fork"`` so a
    monkeypatched scenario registry reaches the workers).  ``chunk``
    reaches the chunk-aware scenarios exactly as in the sequential
    runner.
    """
    from repro.bench.scenarios import SCENARIOS, run_scenarios

    if names is None:
        names = list(SCENARIOS)
    else:
        names = list(names)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}")
    seen = set()
    dupes = sorted({n for n in names if n in seen or seen.add(n)})
    if dupes:
        raise ValueError(
            f"duplicate scenario name(s) {dupes}: each scenario may appear "
            f"at most once per sweep (repeats would reuse its seed)")
    jobs = _resolve_jobs(jobs, len(names))
    if jobs <= 1:
        return run_scenarios(names=names, quick=quick, progress=progress,
                             chunk=chunk)
    ctx = multiprocessing.get_context(mp_context or _DEFAULT_START)
    results = {}
    with ctx.Pool(processes=jobs) as pool:
        job_args = [(name, quick, scenario_seed(name, index), chunk)
                    for index, name in enumerate(names)]
        for name, points in pool.imap_unordered(_run_scenario, job_args):
            results[name] = points
            if progress is not None:
                progress(name)
    merged = []
    for name in names:
        merged.extend(results[name])
    return merged


def parallel_map(func, items, jobs=None, mp_context=None):
    """Map a *top-level* function over ``items`` with a process pool.

    Results come back in input order.  ``jobs<=1`` (or a single item)
    runs inline with no pool, so callers can expose a ``jobs`` knob
    without forking for the common sequential case.  Used by the
    experiment builders for Figure-2-style per-scheduler sweeps.
    """
    items = list(items)
    jobs = _resolve_jobs(jobs, len(items))
    if jobs <= 1:
        return [func(item) for item in items]
    ctx = multiprocessing.get_context(mp_context or _DEFAULT_START)
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(func, items)
