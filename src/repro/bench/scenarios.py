"""Named benchmark scenarios for the perf-regression harness.

Each scenario is a function ``(quick: bool) -> list[BenchPoint]``
registered in :data:`SCENARIOS`.  ``quick`` shrinks the workloads for CI
(same points, fewer packets/repeats) so a perf-smoke run finishes in
seconds while a full run produces the committed baseline.

The scenarios target the hot paths this repo optimises:

``saturated_churn``
    Every flow permanently backlogged; one dequeue + one enqueue per
    transmitted packet, swept over N.  This is the WF2Q+ steady state —
    per-packet cost must stay O(log N).
``bursty_onoff``
    A large registered population, but each burst backlogs only a small
    rotating subset and then drains completely, so *every* burst crosses
    a busy-period boundary.  Before the epoch-based lazy tag reset this
    boundary cost O(N) per burst, making per-packet cost grow with the
    registered population; it must now stay flat.
``hierarchy``
    H-WF2Q+ saturated churn over a balanced depth × fanout tree — the
    RESTART-NODE / RESET-PATH recursion cost.
``zoo``
    Every scheduler in the zoo on the same fixed churn workload, for
    cross-algorithm comparison (includes WFQ's O(N) exact-GPS tax).
``sim_pipeline``
    The full stack end to end — traffic sources scheduling themselves on
    the :class:`~repro.sim.engine.Simulator`, a :class:`~repro.sim.link.Link`
    draining the scheduler in simulated time.  This is what the
    experiment and chaos drivers actually run, and the scenario the
    event-elision/burst-drain fast path targets: cost here is event-loop
    + source + link overhead *around* the scheduler, not just tag
    arithmetic.
``event_engine``
    The pending-event structures head to head — heap vs calendar queue,
    each with and without the ``+pool`` free lists — on a pure
    timer-churn shape (large steady pending set, where the calendar's
    O(1) bucket operations beat the heap's O(log n) sift) and on the
    ``sim_pipeline`` cbr workload (small pending set, where parity is
    the requirement).
``batch_pipeline``
    Saturated churn driven through the chunk-at-a-time batch APIs
    (``enqueue_batch`` / ``dequeue_batch``) at chunk sizes 1/64/512,
    next to a plain per-packet baseline (``chunk=0``).  The chunk=1
    point must stay within noise of the baseline (the batch path costs
    nothing when unused); the larger chunks measure what the amortised
    kernels actually buy.
``sharded_pipeline``
    The sharded driver (:func:`repro.shard.run_sharded`) on the
    ``cbr_flat`` scenario at 1/2/4 shards, full collection pipeline
    included (service traces, metrics sinks, merge, digest).  The
    shards=1 point is the genuine single-process baseline; the ratio
    cost(1)/cost(N) is the scale-out speedup, which is only > 1 when the
    machine has spare cores — per-point regression tracking is what the
    gate checks, the speedup itself is a property of the host.
``hier_vector``
    The columnar H-WF2Q+ backend (:class:`~repro.core.hbatch.
    VectorHWF2QPlus`) against the exact hierarchical kernels on the same
    batch-churn workload: exact at chunk 1/64, vector at chunk 1/64/512,
    plus a ``chunk="auto"`` point measured at whatever chunk the
    batch-histogram autotuner picks from a calibration pass.  The
    headline ratio the CI gate asserts is vector-chunk>=64 against
    exact-chunk-1 — the level-synchronous tag vectorization plus
    amortization, i.e. what the backend buys end to end.

``batch_pipeline`` and ``hier_vector`` are *chunk-aware*: they accept an
optional ``chunk`` override (``repro bench --chunk N``) replacing the
default sweep with the baseline chunk plus the requested one.
"""

from time import perf_counter_ns

from repro.bench.harness import BenchPoint, best_of
from repro.core.packet import Packet

__all__ = ["SCENARIOS", "CHUNK_AWARE", "run_scenarios", "zoo_registry",
           "autotuned_chunk"]

_LENGTH = 8000.0   # bits; one 1000-byte packet
_RATE = 1e9        # bps


# ----------------------------------------------------------------------
# Scheduler factories
# ----------------------------------------------------------------------
def _flat(cls, n_flows, **kwargs):
    sched = cls(_RATE, **kwargs)
    for i in range(n_flows):
        sched.add_flow(str(i), 1 + (i % 3))
    return sched


def _balanced_tree(depth, fanout):
    """Balanced H-WF2Q+ spec: ``fanout ** depth`` leaves."""
    from repro.config import leaf, node

    counter = [0]

    def build(level):
        if level == depth:
            name = str(counter[0])
            counter[0] += 1
            return leaf(name, 1 + (counter[0] % 3))
        children = [build(level + 1) for _ in range(fanout)]
        return node(f"n{level}.{counter[0]}", 1, children)

    return build(0)


def zoo_registry():
    """name -> factory(n_flows) for every scheduler in the zoo."""
    from repro.core import (
        DRRScheduler,
        FFQScheduler,
        FIFOScheduler,
        HPFQScheduler,
        SCFQScheduler,
        SFQScheduler,
        VirtualClockScheduler,
        WF2QPlusScheduler,
        WF2QScheduler,
        WFQScheduler,
        WRRScheduler,
    )

    def hier(policy):
        def build(n_flows):
            depth = 2
            fanout = max(2, round(n_flows ** (1 / depth)))
            return HPFQScheduler(
                _balanced_tree(depth, fanout), _RATE, policy=policy)
        return build

    return {
        "FIFO": lambda n: _flat(FIFOScheduler, n),
        "WRR": lambda n: _flat(WRRScheduler, n),
        "DRR": lambda n: _flat(DRRScheduler, n),
        "SCFQ": lambda n: _flat(SCFQScheduler, n),
        "SFQ": lambda n: _flat(SFQScheduler, n),
        "VirtualClock": lambda n: _flat(VirtualClockScheduler, n),
        "FFQ": lambda n: _flat(FFQScheduler, n),
        "WFQ": lambda n: _flat(WFQScheduler, n),
        "WF2Q": lambda n: _flat(WF2QScheduler, n),
        "WF2Q+": lambda n: _flat(WF2QPlusScheduler, n),
        "H-WF2Q+": hier("wf2qplus"),
        "H-WFQ": hier("wfq"),
    }


# ----------------------------------------------------------------------
# Workload drivers (the timed inner loops)
# ----------------------------------------------------------------------
def churn_cost(build, packets):
    """ns/packet of saturated churn on a freshly built scheduler.

    Every flow is pre-filled with two packets (so it never empties while
    being served), then the timed loop transmits ``packets`` packets,
    re-enqueueing one to the served flow after each dequeue.
    """
    sched = build()
    flow_ids = sched.flow_ids
    for fid in flow_ids:
        sched.enqueue(Packet(fid, _LENGTH), now=0.0)
        sched.enqueue(Packet(fid, _LENGTH), now=0.0)
    dequeue, enqueue = sched.dequeue, sched.enqueue
    t0 = perf_counter_ns()
    for _ in range(packets):
        rec = dequeue()
        enqueue(Packet(rec.flow_id, _LENGTH), now=rec.finish_time)
    return (perf_counter_ns() - t0) / packets


def batch_churn_cost(build, packets, chunk):
    """ns/packet of saturated churn driven through the batch APIs.

    Same steady state as :func:`churn_cost`, but the timed loop moves
    ``chunk`` packets per call: ``dequeue_batch(chunk)`` then one
    ``enqueue_batch`` re-filling the served flows at the last finish
    time.  The prefill scales with the chunk so the backlog never dips
    below one full chunk; at ``chunk=1`` the prefill matches
    :func:`churn_cost` exactly, making that point the apples-to-apples
    batch-overhead measurement.
    """
    sched = build()
    flow_ids = sched.flow_ids
    prefill = max(2, (2 * chunk) // len(flow_ids))
    for fid in flow_ids:
        for _ in range(prefill):
            sched.enqueue(Packet(fid, _LENGTH), now=0.0)
    dequeue_batch = sched.dequeue_batch
    enqueue_batch = sched.enqueue_batch
    remaining = packets
    t0 = perf_counter_ns()
    while remaining > 0:
        records = dequeue_batch(chunk if chunk <= remaining else remaining)
        remaining -= len(records)
        now = records[-1].finish_time
        enqueue_batch([Packet(r.flow_id, _LENGTH) for r in records], now=now)
    return (perf_counter_ns() - t0) / packets


def bursty_cost(build, bursts, burst_flows=8, per_flow=2):
    """ns/packet of on/off bursts over a large registered population.

    Each burst backlogs ``burst_flows`` flows (rotating through the
    population) with ``per_flow`` packets, then drains the system
    completely — so the next burst starts a new busy period.
    """
    sched = build()
    flow_ids = sched.flow_ids
    n = len(flow_ids)
    packets = 0
    now = 0.0
    t0 = perf_counter_ns()
    for b in range(bursts):
        base = (b * burst_flows) % n
        for j in range(burst_flows):
            fid = flow_ids[(base + j) % n]
            for _ in range(per_flow):
                sched.enqueue(Packet(fid, _LENGTH), now=now)
        packets += burst_flows * per_flow
        rec = None
        while not sched.is_empty:
            rec = sched.dequeue()
        now = rec.finish_time + 1e-3  # idle gap: busy period over
    return (perf_counter_ns() - t0) / packets


def _pipeline_build(sched_name, workload, n_flows=36):
    """Scheduler + source list for one end-to-end pipeline point."""
    from repro.core import FIFOScheduler, HPFQScheduler, WF2QPlusScheduler
    from repro.traffic.source import CBRSource, PacketTrainSource

    if sched_name == "FIFO":
        sched = _flat(FIFOScheduler, n_flows)
    elif sched_name == "WF2Q+":
        sched = _flat(WF2QPlusScheduler, n_flows)
    else:
        # depth 2 x fanout 6 = 36 leaves named "0".."35", same ids as _flat.
        sched = HPFQScheduler(_balanced_tree(2, 6), _RATE, policy="wf2qplus")

    sources = []
    if workload == "cbr":
        # Steady aggregate at 98 % load — the link is near-saturated, so
        # busy periods are long (the regime the burst-drain targets) —
        # with starts staggered so arrivals interleave instead of
        # phase-locking.
        rate = 0.98 * _RATE / n_flows
        stagger = _LENGTH / _RATE / n_flows
        for i in range(n_flows):
            sources.append(CBRSource(str(i), rate, _LENGTH,
                                     start_time=i * stagger))
    else:
        # Bursts: 32-packet trains at 8x the link rate, 85 % aggregate
        # load — long busy periods with frequent queue build-up/drain.
        per_flow = 0.85 * _RATE / n_flows
        interval = 32 * _LENGTH / per_flow
        for i in range(n_flows):
            sources.append(PacketTrainSource(
                str(i), _LENGTH, train_length=32, train_interval=interval,
                line_rate=8 * _RATE, start_time=i * interval / n_flows))
    return sched, sources


def pipeline_cost(build, duration, engine=None):
    """(ns/packet, packets) of a full source->scheduler->link simulation.

    ``engine`` selects the event engine (None = the session default);
    a ``+pool`` engine also wires the packet free list into the link and
    sources, measuring the full zero-allocation configuration.
    """
    from repro.core.packet import PacketPool
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

    sched, sources = build()
    sim = Simulator(engine=engine)
    packet_pool = (PacketPool()
                   if engine is not None and engine.endswith("+pool")
                   else None)
    link = Link(sim, sched, packet_pool=packet_pool)
    for src in sources:
        src.attach(sim, link)
        if packet_pool is not None:
            src.packet_pool = packet_pool
        src.start()
    t0 = perf_counter_ns()
    sim.run(until=duration)
    elapsed = perf_counter_ns() - t0
    return elapsed / max(1, link.packets_sent), link.packets_sent


def timer_churn_cost(engine, timers, ticks):
    """ns/event of a steady self-rescheduling timer population.

    ``timers`` concurrent periodic timers each fire ``ticks`` times,
    rescheduling themselves (``pooled=True``) until the budget runs out —
    a pure event-engine measurement with a large, stable pending set and
    no scheduler arithmetic in the loop.  This is the regime where the
    heap's O(log n) per-operation cost separates from the calendar's
    O(1): the committed baseline's 262144-timer point is the tentpole's
    headline ratio.  Only the drain is timed (the initial schedule burst
    is setup); the divisor is the simulator's own processed-event count.
    """
    from repro.sim.engine import Simulator

    sim = Simulator(engine=engine)
    left = timers * ticks
    sched = sim.schedule_in

    def tick(i, dt):
        nonlocal left
        left -= 1
        if left > 0:
            sched(dt, tick, i, dt, pooled=True)

    for i in range(timers):
        dt = 0.001 * (1 + (i % 97) / 97.0)
        sched(dt * (i + 1) / timers, tick, i, dt, pooled=True)
    t0 = perf_counter_ns()
    sim.run()
    elapsed = perf_counter_ns() - t0
    return elapsed / max(1, sim.events_processed)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_saturated_churn(quick):
    from repro.core import WF2QPlusScheduler

    packets = 3000 if quick else 20000
    repeats = 3
    points = []
    for n in (16, 64, 256, 1024):
        cost = best_of(
            lambda: churn_cost(lambda: _flat(WF2QPlusScheduler, n), packets),
            repeats)
        points.append(BenchPoint(
            "saturated_churn", "WF2Q+", {"flows": n}, packets, cost))
    return points


def scenario_bursty_onoff(quick):
    from repro.core import WF2QPlusScheduler

    bursts = 100 if quick else 600
    repeats = 3
    points = []
    for n in (16, 64, 256, 1024):
        cost = best_of(
            lambda: bursty_cost(lambda: _flat(WF2QPlusScheduler, n), bursts),
            repeats)
        points.append(BenchPoint(
            "bursty_onoff", "WF2Q+", {"flows": n}, bursts * 16, cost))
    return points


def scenario_hierarchy(quick):
    from repro.core import HPFQScheduler

    packets = 2000 if quick else 12000
    repeats = 3
    points = []
    for depth, fanout in ((2, 4), (2, 8), (3, 8)):
        def build(depth=depth, fanout=fanout):
            return HPFQScheduler(
                _balanced_tree(depth, fanout), _RATE, policy="wf2qplus")
        cost = best_of(lambda: churn_cost(build, packets), repeats)
        points.append(BenchPoint(
            "hierarchy", "H-WF2Q+",
            {"depth": depth, "fanout": fanout, "leaves": fanout ** depth},
            packets, cost))
    return points


def scenario_zoo(quick):
    packets = 1500 if quick else 6000
    repeats = 3
    n = 64
    points = []
    for name, factory in zoo_registry().items():
        cost = best_of(
            lambda: churn_cost(lambda: factory(n), packets), repeats)
        points.append(BenchPoint(
            "zoo", name, {"flows": n}, packets, cost))
    return points


def scenario_sim_pipeline(quick):
    repeats = 3
    durations = {"cbr": 0.02 if quick else 0.2,
                 "train": 0.05 if quick else 0.4}
    points = []
    for sched_name in ("FIFO", "WF2Q+", "H-WF2Q+"):
        for workload in ("cbr", "train"):
            duration = durations[workload]
            counts = []

            def once(sched_name=sched_name, workload=workload,
                     duration=duration, counts=counts):
                cost, n = pipeline_cost(
                    lambda: _pipeline_build(sched_name, workload), duration)
                counts.append(n)
                return cost

            cost = best_of(once, repeats)
            points.append(BenchPoint(
                "sim_pipeline", sched_name,
                {"workload": workload, "flows": 36}, counts[-1], cost))
    return points


def scenario_batch_pipeline(quick, chunk=None):
    """Chunk-at-a-time churn through the batch scheduling kernels.

    ``chunk=0`` is the plain per-packet driver (no batch API at all) and
    ``chunk=1`` the batch API moving one packet per call — those two
    must stay within noise of each other, pinning the batch-path
    overhead at zero.  ``chunk=64/512`` measure the amortised kernels
    (hoisted lookups, one heap re-establishment per chunk).  An explicit
    ``chunk`` replaces the 64/512 sweep with that one size.
    """
    from repro.core import FIFOScheduler, HPFQScheduler, WF2QPlusScheduler

    packets = 3072 if quick else 24576
    repeats = 3
    chunks = ((0, 1, 64, 512) if not isinstance(chunk, int)
              else tuple(dict.fromkeys((0, 1, chunk))))
    builders = {
        "FIFO": lambda: _flat(FIFOScheduler, 64),
        "WF2Q+": lambda: _flat(WF2QPlusScheduler, 64),
        "H-WF2Q+": lambda: HPFQScheduler(
            _balanced_tree(2, 8), _RATE, policy="wf2qplus"),
    }
    points = []
    for name, build in builders.items():
        for chunk in chunks:
            if chunk == 0:
                cost = best_of(
                    lambda build=build: churn_cost(build, packets), repeats)
            else:
                cost = best_of(
                    lambda build=build, chunk=chunk: batch_churn_cost(
                        build, packets, chunk),
                    repeats)
            points.append(BenchPoint(
                "batch_pipeline", name, {"chunk": chunk, "flows": 64},
                packets, cost))
    return points


def scenario_event_engine(quick):
    """Heap vs calendar event engines, with and without the free lists.

    Two shapes per engine:

    * ``timers`` — :func:`timer_churn_cost`'s steady self-rescheduling
      population, the pure event-engine measurement.  Full mode adds the
      262144-timer point (quick leaves it "missing", like the sharded
      sweep's larger shard counts) where the calendar's O(1) bucket
      operations beat the heap's O(log n) sift; the committed baseline
      records that headline ratio and CI asserts it stays >= 1.2x.
    * ``pipeline`` — the ``sim_pipeline`` cbr workload end to end under
      each engine.  At 36 flows the pending set is small, so parity (not
      speedup) is the expectation being pinned: the calendar must not tax
      workloads too small to benefit from it.
    """
    from repro.sim.engine import ENGINES

    repeats = 2 if quick else 3
    sizes = (65536,) if quick else (65536, 262144)
    ticks = 2 if quick else 4
    points = []
    for n in sizes:
        for eng in ENGINES:
            cost = best_of(
                lambda eng=eng, n=n: timer_churn_cost(eng, n, ticks),
                repeats if n <= 65536 else 2)
            points.append(BenchPoint(
                "event_engine", eng, {"shape": "timers", "timers": n},
                n * ticks, cost))
    duration = 0.02 if quick else 0.2
    for eng in ENGINES:
        counts = []

        def once(eng=eng, counts=counts):
            cost, sent = pipeline_cost(
                lambda: _pipeline_build("WF2Q+", "cbr"), duration,
                engine=eng)
            counts.append(sent)
            return cost

        cost = best_of(once, repeats)
        points.append(BenchPoint(
            "event_engine", eng,
            {"shape": "pipeline", "workload": "cbr", "flows": 36},
            counts[-1], cost))
    return points


def scenario_sharded_pipeline(quick):
    """Sharded scale-out driver, measured end to end (pool included).

    Quick mode runs the *same workload* as full mode — the fixed pool
    start-up cost would otherwise skew quick-vs-baseline ratios — and
    trims only the shard counts and repeats.  Workers fork where the
    platform allows (CI and the baseline machine are both Linux):
    start-up is milliseconds instead of a fresh interpreter per worker,
    so the measurement tracks simulation + merge cost.  Spawn
    correctness is the differential suite's job, not the bench's.
    """
    import multiprocessing

    from repro.shard import run_sharded

    flows, cells, duration = 256, 8, 0.05
    shard_counts = (1, 2) if quick else (1, 2, 4)
    # Whole-run wall clock (pool, collection, merge, GC) is noisier than
    # the scheduler-only inner loops; best-of-3 keeps the gate honest.
    repeats = 2 if quick else 3
    start = ("fork" if "fork" in multiprocessing.get_all_start_methods()
             else None)
    if multiprocessing.current_process().daemon:
        # A --jobs>1 sweep runs scenarios in daemonic pool workers, which
        # cannot spawn the shard pool; keep the in-process point and let
        # compare() report the rest as "missing" (not regressions).
        shard_counts = (1,)
    points = []
    for shards in shard_counts:
        counts = []

        def once(shards=shards, counts=counts):
            report = run_sharded("cbr_flat", shards=shards, flows=flows,
                                 cells=cells, duration=duration,
                                 mp_context=start)
            counts.append(report["totals"]["packets_sent"])
            return 1e9 * report["wall_seconds"] / max(1, counts[-1])

        cost = best_of(once, repeats)
        points.append(BenchPoint(
            "sharded_pipeline", "WF2Q+",
            {"shards": shards, "flows": flows, "cells": cells},
            counts[-1], cost))
    return points


def autotuned_chunk(build, packets):
    """Calibrate a scheduler's drain chunk from a profiled batch sweep.

    Drives an equal share of ``packets`` through the batch APIs at every
    :data:`~repro.obs.profile.CHUNK_CHOICES` candidate with a
    :class:`~repro.obs.profile.SchedulerProfiler` attached, then feeds
    the profiler's ``(seconds, packets)`` batch histogram to
    :func:`~repro.obs.profile.recommend_chunk` — the offline twin of the
    in-band :class:`~repro.obs.profile.ChunkAutotuner`.  Returns the
    recommended chunk (never None here: the sweep always moves packets).
    """
    from repro.obs import CHUNK_CHOICES, SchedulerProfiler, recommend_chunk

    sched = build()
    flow_ids = sched.flow_ids
    prefill = max(2, (2 * max(CHUNK_CHOICES)) // len(flow_ids))
    for fid in flow_ids:
        for _ in range(prefill):
            sched.enqueue(Packet(fid, _LENGTH), now=0.0)
    profiler = SchedulerProfiler(sched)
    share = max(1, packets // len(CHUNK_CHOICES))
    for chunk in CHUNK_CHOICES:
        remaining = share
        while remaining > 0:
            records = sched.dequeue_batch(
                chunk if chunk <= remaining else remaining)
            remaining -= len(records)
            sched.enqueue_batch(
                [Packet(r.flow_id, _LENGTH) for r in records],
                now=records[-1].finish_time)
    profiler.detach()
    return recommend_chunk(profiler.batch_samples)


def scenario_hier_vector(quick, chunk=None):
    """Columnar H-WF2Q+ backend vs the exact hierarchical kernels.

    Same 2x8 tree and batch-churn workload as ``batch_pipeline``'s
    H-WF2Q+ rows.  ``H-WF2Q+`` points run the exact scheduler,
    ``VH-WF2Q+`` the :class:`~repro.core.hbatch.VectorHWF2QPlus`
    backend; the ``chunk="auto"`` point first calibrates via
    :func:`autotuned_chunk` and then measures at the recommendation,
    keeping its params key stable across runs.  An explicit ``chunk``
    narrows the vector sweep to chunk 1 plus that size.
    """
    from repro.core import HPFQScheduler, VectorHWF2QPlus

    packets = 3072 if quick else 24576
    repeats = 3

    def exact():
        return HPFQScheduler(_balanced_tree(2, 8), _RATE, policy="wf2qplus")

    def vector():
        return VectorHWF2QPlus(_balanced_tree(2, 8), _RATE)

    vector_chunks = ((1, 64, 512, "auto") if not isinstance(chunk, int)
                     else tuple(dict.fromkeys((1, chunk))))
    points = []
    for name, build, chunks in (("H-WF2Q+", exact, (1, 64)),
                                ("VH-WF2Q+", vector, vector_chunks)):
        for c in chunks:
            measured = (autotuned_chunk(build, min(packets, 4096))
                        if c == "auto" else c)

            def once(build=build, measured=measured):
                return batch_churn_cost(build, packets, measured)

            backend = "exact" if name == "H-WF2Q+" else "vector"
            points.append(BenchPoint(
                "hier_vector", name,
                {"backend": backend, "chunk": c, "flows": 64},
                packets, best_of(once, repeats)))
    return points


SCENARIOS = {
    "saturated_churn": scenario_saturated_churn,
    "bursty_onoff": scenario_bursty_onoff,
    "hierarchy": scenario_hierarchy,
    "zoo": scenario_zoo,
    "sim_pipeline": scenario_sim_pipeline,
    "event_engine": scenario_event_engine,
    "batch_pipeline": scenario_batch_pipeline,
    "sharded_pipeline": scenario_sharded_pipeline,
    "hier_vector": scenario_hier_vector,
}

#: Scenarios whose point sweep honours the ``chunk`` override.
CHUNK_AWARE = ("batch_pipeline", "hier_vector")


def run_scenarios(names=None, quick=False, progress=None, chunk=None):
    """Run the named scenarios (all by default); return the points.

    ``chunk`` (an int) overrides the chunk sweep of the
    :data:`CHUNK_AWARE` scenarios; other scenarios ignore it.
    """
    if names is None:
        names = list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}")
    points = []
    for name in names:
        if progress is not None:
            progress(name)
        if name in CHUNK_AWARE:
            points.extend(SCENARIOS[name](quick, chunk=chunk))
        else:
            points.extend(SCENARIOS[name](quick))
    return points
