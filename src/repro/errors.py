"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The subclasses mirror the major subsystems:
scheduler configuration, hierarchy construction, and simulation.
"""

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulerError",
    "UnknownFlowError",
    "DuplicateFlowError",
    "EmptySchedulerError",
    "InvariantViolation",
    "HierarchyError",
    "SimulationError",
    "CheckpointError",
    "WorkerError",
    "ServiceError",
    "ServiceCrash",
    "ServiceStall",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A scheduler, hierarchy, or experiment was configured inconsistently.

    Examples: a non-positive service share, child shares that exceed the
    parent's share, or a leaky bucket with a negative burst size.
    """


class SchedulerError(ReproError):
    """Base class for runtime scheduler errors."""


class UnknownFlowError(SchedulerError, KeyError):
    """A packet referenced a flow id that was never registered."""

    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.flow_id = flow_id

    def __str__(self):
        return f"unknown flow id: {self.flow_id!r}"


class DuplicateFlowError(SchedulerError):
    """A flow id was registered twice with the same scheduler or node."""

    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.flow_id = flow_id

    def __str__(self):
        return f"flow id already registered: {self.flow_id!r}"


class EmptySchedulerError(SchedulerError):
    """``dequeue`` was called on a scheduler with no backlogged packets."""


class InvariantViolation(SchedulerError):
    """A runtime invariant check failed while consuming the event stream.

    Raised by :class:`repro.obs.invariants.InvariantChecker`; structured so
    tooling can dispatch on it: ``invariant`` is the check's stable name
    (e.g. ``"seff-eligibility"``), ``event`` the offending
    :class:`~repro.obs.events.SchedulerEvent` (or ``None`` for stream-level
    problems), and ``message`` the human-readable explanation.
    """

    def __init__(self, invariant, message, event=None):
        super().__init__(invariant, message)
        self.invariant = invariant
        self.message = message
        self.event = event

    def __str__(self):
        text = f"[{self.invariant}] {self.message}"
        if self.event is not None:
            text += f" | offending event: {self.event!r}"
        return text


class HierarchyError(ReproError):
    """The scheduling hierarchy was malformed (cycle, orphan, bad share)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CheckpointError(ReproError):
    """A persisted checkpoint could not be written or read back.

    Covers truncated or corrupt files (bad magic, length or digest
    mismatch) and format-version mismatches.  ``path`` locates the file,
    ``reason`` is a stable machine-checkable slug (``"magic"``,
    ``"version"``, ``"truncated"``, ``"digest"``, ``"unpickle"``).
    """

    def __init__(self, path, reason, message):
        super().__init__(path, reason, message)
        self.path = path
        self.reason = reason
        self.message = message

    def __str__(self):
        return f"checkpoint {self.path}: [{self.reason}] {self.message}"


class WorkerError(ReproError):
    """Shard workers died and exhausted their retry budget.

    ``failures`` maps shard id -> human-readable cause of the *last*
    failed attempt, so the driver reports exactly which cells failed
    instead of surfacing an opaque pool error.
    """

    def __init__(self, failures):
        super().__init__(failures)
        self.failures = dict(failures)

    def __str__(self):
        cells = ", ".join(
            f"shard {sid}: {cause}" for sid, cause in sorted(self.failures.items())
        )
        return f"shard workers failed after retries ({cells})"


class ServiceError(ReproError):
    """Base class for long-lived service-mode (``repro serve``) errors."""


class ServiceCrash(ServiceError):
    """The service run raised; the supervisor may restart from a
    checkpoint.  ``cause`` holds the original exception."""

    def __init__(self, cause):
        super().__init__(cause)
        self.cause = cause

    def __str__(self):
        return f"service crashed: {self.cause!r}"


class ServiceStall(ServiceError):
    """The watchdog saw no simulated-time progress within its wall-clock
    budget."""
