"""Deterministic fault plans: seeded schedules of adverse events.

A :class:`FaultPlan` is a *pure description* — an ordered list of
:class:`FaultAction` records (link outages, degradation windows, rate
changes, share renegotiations, flow churn storms, buffer-pressure ramps)
built either directly from the primitives or from the seeded storm
helpers, which draw times and magnitudes from a private
``random.Random(seed)`` so the same seed always produces the same plan.

A plan does nothing by itself.  :class:`FaultInjector` binds it to a
:class:`~repro.sim.link.Link` and compiles every action into one
simulator event; each applied action also emits a typed
:class:`~repro.obs.events.FaultEvent` on the scheduler's observability
bus, so fault timelines appear in traces next to the enqueues and drops
they caused.

Determinism is the whole point: a fault plan is part of the experiment's
identity, exactly like an arrival pattern.  Replaying (seed, plan,
traffic) must reproduce every drop and every tag — the chaos harness
(:mod:`repro.faults.chaos`) asserts that it does.
"""

import random
from fractions import Fraction

from repro.errors import ConfigurationError
from repro.obs.events import FaultEvent

__all__ = ["FaultAction", "FaultPlan", "FaultInjector"]

#: Action kinds understood by :class:`FaultInjector`.
KINDS = frozenset({
    "link_down", "link_up", "link_rate", "link_scale",
    "set_share", "add_flow", "remove_flow", "enqueue_burst",
    "buffer_limit", "shared_buffer", "attach", "detach",
})


class FaultAction:
    """One scheduled fault: ``(time, kind, target, value)``.

    ``seq`` is the creation order — the tie-break for simultaneous
    actions, so a plan's execution order never depends on dict or sort
    instability.
    """

    __slots__ = ("time", "kind", "target", "value", "seq")

    def __init__(self, time, kind, target, value, seq):
        self.time = time
        self.kind = kind
        self.target = target
        self.value = value
        self.seq = seq

    def __repr__(self):
        extra = "" if self.target is None else f", {self.target!r}"
        return f"FaultAction(t={self.time!r}, {self.kind}{extra})"


class FaultPlan:
    """A seeded, deterministic schedule of fault actions.

    Primitives append one action; the ``*_storm`` / ``*_ramp`` helpers
    draw many from the plan's private RNG.  Actions may be added in any
    order — the injector sorts by ``(time, seq)``.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self.actions = []
        self._seq = 0
        self._rng = random.Random(seed)

    def _add(self, time, kind, target=None, value=None):
        if time < 0:
            raise ConfigurationError(
                f"fault time must be >= 0, got {time!r}"
            )
        if kind not in KINDS:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
        action = FaultAction(time, kind, target, value, self._seq)
        self._seq += 1
        self.actions.append(action)
        return action

    def __len__(self):
        return len(self.actions)

    def __iter__(self):
        return iter(sorted(self.actions, key=lambda a: (a.time, a.seq)))

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def link_down(self, time):
        """Administratively down the link (packet-granular; see Link.pause)."""
        return self._add(time, "link_down")

    def link_up(self, time):
        return self._add(time, "link_up")

    def link_outage(self, start, duration):
        """A down/up window — arrivals keep queueing throughout."""
        if duration <= 0:
            raise ConfigurationError(
                f"outage duration must be positive, got {duration!r}"
            )
        self._add(start, "link_down")
        self._add(start + duration, "link_up")
        return self

    def link_rate(self, time, rate):
        """Set the link rate to an absolute value at ``time``."""
        return self._add(time, "link_rate", value=rate)

    def link_degradation(self, start, duration, factor=Fraction(1, 2)):
        """Scale the link rate by ``factor`` for a window, then undo it.

        Fraction factors compose exactly (``f * 1/f == 1``), so the rate
        is restored bit-for-bit even after nested windows.
        """
        if not 0 < factor < 1:
            raise ConfigurationError(
                f"degradation factor must be in (0, 1), got {factor!r}"
            )
        self._add(start, "link_scale", value=factor)
        self._add(start + duration, "link_scale",
                  value=1 / Fraction(factor) if not isinstance(factor, float)
                  else 1 / factor)
        return self

    # ------------------------------------------------------------------
    # Share renegotiation
    # ------------------------------------------------------------------
    def set_share(self, time, target, share):
        return self._add(time, "set_share", target=target, value=share)

    def share_storm(self, start, duration, targets, count,
                    low=1, high=10):
        """``count`` renegotiations at seeded times over seeded targets."""
        targets = list(targets)
        if not targets:
            raise ConfigurationError("share_storm needs at least one target")
        rng = self._rng
        for _ in range(count):
            self.set_share(
                start + rng.random() * duration,
                rng.choice(targets),
                rng.randint(low, high),
            )
        return self

    # ------------------------------------------------------------------
    # Flow churn
    # ------------------------------------------------------------------
    def add_flow(self, time, flow_id, share=1):
        return self._add(time, "add_flow", target=flow_id, value=share)

    def remove_flow(self, time, flow_id):
        """Remove a flow; retried by the injector until the flow drains."""
        return self._add(time, "remove_flow", target=flow_id)

    def enqueue_burst(self, time, flow_id, count, length):
        return self._add(time, "enqueue_burst", target=flow_id,
                         value=(count, length))

    def churn_storm(self, start, duration, count, prefix="churn",
                    burst=4, length=8000, low_share=1, high_share=5):
        """``count`` short-lived flows: add, burst, then remove.

        Every lifetime fits inside the window; removals retry until the
        burst drains, so churn exercises the add/remove bookkeeping under
        backlog without ever violating the idle-removal contract.
        """
        rng = self._rng
        for index in range(count):
            flow_id = f"{prefix}-{index}"
            born = start + rng.random() * (duration * 0.5)
            dies = born + duration * 0.25 + rng.random() * (duration * 0.25)
            self.add_flow(born, flow_id,
                          share=rng.randint(low_share, high_share))
            self.enqueue_burst(born, flow_id, 1 + rng.randrange(burst),
                               length)
            self.remove_flow(dies, flow_id)
        return self

    # ------------------------------------------------------------------
    # Buffer pressure
    # ------------------------------------------------------------------
    def buffer_limit(self, time, flow_id, packets, policy="tail"):
        return self._add(time, "buffer_limit", target=flow_id,
                         value=(packets, policy))

    def shared_buffer(self, time, packets, policy="tail"):
        return self._add(time, "shared_buffer", value=(packets, policy))

    def buffer_ramp(self, start, duration, high, low, steps=4,
                    policy="longest"):
        """Tighten the shared buffer from ``high`` to ``low`` and release.

        The cap steps down across the window (the classic congestion
        ramp), then the final action removes it, so a drained system ends
        every scenario with unconstrained admission again.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps!r}")
        if low > high:
            raise ConfigurationError(
                f"ramp goes from high={high!r} down to low={low!r}"
            )
        for step in range(steps):
            frac = step / steps
            limit = max(low, int(round(high - (high - low) * frac)))
            self.shared_buffer(start + frac * duration, limit, policy)
        self.shared_buffer(start + duration, low, policy)
        self.shared_buffer(start + duration * 1.25, None)
        return self

    # ------------------------------------------------------------------
    # Topology (hierarchical schedulers)
    # ------------------------------------------------------------------
    def attach(self, time, parent, subtree):
        """Graft a NodeSpec subtree under ``parent`` (H-PFQ only)."""
        return self._add(time, "attach", target=parent, value=subtree)

    def detach(self, time, name):
        return self._add(time, "detach", target=name)

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, actions={len(self.actions)})"


class FaultInjector:
    """Compiles a :class:`FaultPlan` into simulator events on a Link.

    Parameters
    ----------
    plan:
        The fault plan to execute.
    link:
        The :class:`~repro.sim.link.Link` under attack; its scheduler
        receives the share/buffer/topology actions.
    retry_interval:
        Seconds between retries of a ``remove_flow`` action whose flow is
        still backlogged (removal contracts require an idle flow).
    priority:
        Simulator priority of fault events.  The default ``1`` runs a
        fault *after* all same-instant traffic, which keeps plans
        readable ("at t=2 the link went down" means after t=2's arrival).
    """

    def __init__(self, plan, link, retry_interval=1e-3, priority=1):
        if retry_interval <= 0:
            raise ConfigurationError(
                f"retry interval must be positive, got {retry_interval!r}"
            )
        self.plan = plan
        self.link = link
        self.retry_interval = retry_interval
        self.priority = priority
        self.applied = 0
        self.retries = 0

    def arm(self):
        """Schedule every plan action; returns self for chaining."""
        sim = self.link.sim
        for action in self.plan:
            sim.schedule(action.time, self._fire, action,
                         priority=self.priority)
        return self

    # ------------------------------------------------------------------
    def _emit(self, action, value=None):
        scheduler = self.link.scheduler
        obs = scheduler.observer
        self.applied += 1
        if obs is not None:
            obs.emit(FaultEvent(self.link.sim.now, scheduler.name,
                                action.kind, action.target,
                                action.value if value is None else value))

    def _fire(self, action):
        link = self.link
        scheduler = link.scheduler
        kind = action.kind
        if kind == "link_down":
            link.pause()
        elif kind == "link_up":
            link.resume()
        elif kind == "link_rate":
            link.set_rate(action.value)
        elif kind == "link_scale":
            new_rate = scheduler.rate * action.value
            link.set_rate(new_rate)
            self._emit(action, value=new_rate)
            return
        elif kind == "set_share":
            scheduler.set_share(action.target, action.value)
        elif kind == "add_flow":
            scheduler.add_flow(action.target, action.value)
        elif kind == "remove_flow":
            scheduler.sync(link.sim.now)
            if scheduler.queue_length(action.target) > 0:
                # The contract requires an idle flow; try again shortly.
                self.retries += 1
                link.sim.schedule_in(self.retry_interval, self._fire,
                                     action, priority=self.priority)
                return
            scheduler.remove_flow(action.target)
        elif kind == "enqueue_burst":
            from repro.core.packet import Packet
            count, length = action.value
            for _ in range(count):
                link.send(Packet(action.target, length))
        elif kind == "buffer_limit":
            packets, policy = action.value
            scheduler.set_buffer_limit(action.target, packets, policy)
        elif kind == "shared_buffer":
            packets, policy = (action.value if action.value[0] is not None
                               else (None, "tail"))
            scheduler.set_shared_buffer(packets, policy)
        elif kind == "attach":
            scheduler.attach_subtree(action.target, action.value)
            self._emit(action, value=action.value.name)
            return
        elif kind == "detach":
            scheduler.sync(link.sim.now)
            try:
                scheduler.detach_subtree(action.target)
            except ConfigurationError:
                # Subtree still has queued or in-flight work; the detach
                # contract (like remove_flow's) wants it quiescent.
                self.retries += 1
                link.sim.schedule_in(self.retry_interval, self._fire,
                                     action, priority=self.priority)
                return
        else:  # pragma: no cover - _add validates kinds
            raise ConfigurationError(f"unknown fault kind {kind!r}")
        self._emit(action)

    def __repr__(self):
        return (f"FaultInjector(actions={len(self.plan)}, "
                f"applied={self.applied}, retries={self.retries})")
