"""Joint checkpoint/rollback of a Simulator + Link + scheduler stack.

The individual pieces each know how to snapshot themselves
(``scheduler.snapshot()``, ``link.snapshot()``, ``sim.snapshot()``); the
subtlety a joint checkpoint must handle is the in-flight packet's finish
event, which lives in the simulator queue *and* is re-armed by
``Link.restore``.  :func:`checkpoint` excludes it from the simulator
snapshot so :func:`rollback` neither loses nor doubles it.

Checkpoints are in-process: simulator callbacks (traffic sources, fault
actions) are captured by reference.  Scheduler-only snapshots
(``scheduler.snapshot()``) are plain data and picklable.

Durable checkpoints
-------------------
:func:`save_checkpoint` / :func:`load_checkpoint` persist any *picklable*
checkpoint payload (the cell-level snapshots ``repro.shard.worker``
builds, the service-mode state ``repro.serve`` checkpoints) to disk with
crash-safe atomicity:

* the payload is written to a temp file in the target directory, flushed
  and ``fsync``'d, then moved into place with ``os.replace`` (atomic on
  POSIX), and the directory entry is fsync'd — a crash at any instant
  leaves either the old file or the new file, never a torn one;
* a versioned header (magic + format version + payload length + SHA-256)
  lets the loader *detect* truncated, corrupt, or foreign files and
  mismatched format versions and raise a typed
  :class:`~repro.errors.CheckpointError` instead of unpickling garbage.

:class:`CheckpointStore` manages a directory of sequentially numbered
checkpoints and recovers from the newest file that passes verification,
skipping corrupt or partial ones.
"""

import hashlib
import os
import pickle
import struct
import tempfile

from repro.errors import CheckpointError

__all__ = [
    "checkpoint",
    "rollback",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointStore",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]

#: File magic: identifies a repro checkpoint regardless of version.
CHECKPOINT_MAGIC = b"RPCK"
#: Current on-disk format version.  Bump on any layout change; the loader
#: refuses mismatches with a clear error instead of misinterpreting bytes.
CHECKPOINT_VERSION = 1

#: Header layout: magic, u32 version, u64 payload length, 32-byte SHA-256.
_HEADER = struct.Struct(">4sIQ32s")


def save_checkpoint(path, payload):
    """Atomically persist a picklable ``payload`` to ``path``.

    Temp file + fsync + ``os.replace`` + directory fsync: after this
    returns, the checkpoint survives a crash or power loss; if the
    process dies mid-write, ``path`` still holds its previous content
    (or stays absent).  Returns the number of bytes written.
    """
    path = os.fspath(path)
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(path, "pickle",
                              f"payload is not picklable: {exc}") from exc
    header = _HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, len(blob),
                          hashlib.sha256(blob).digest())
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # fsync the directory so the rename itself is durable.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return len(header) + len(blob)  # platform without dir fds
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return len(header) + len(blob)


def load_checkpoint(path):
    """Load and verify a :func:`save_checkpoint` file.

    Raises :class:`~repro.errors.CheckpointError` with a stable ``reason``
    slug on any defect: ``"truncated"`` (short header or payload),
    ``"magic"`` (not a checkpoint file), ``"version"`` (format version
    mismatch — re-run with the writing version or discard), ``"digest"``
    (bit rot / torn write), ``"unpickle"`` (undecodable payload).
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise CheckpointError(
                path, "truncated",
                f"file is {len(header)} bytes, shorter than the "
                f"{_HEADER.size}-byte header")
        magic, version, length, digest = _HEADER.unpack(header)
        if magic != CHECKPOINT_MAGIC:
            raise CheckpointError(
                path, "magic",
                f"bad magic {magic!r}: not a repro checkpoint file")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                path, "version",
                f"format version {version} does not match this build's "
                f"version {CHECKPOINT_VERSION}; refusing to guess at the "
                f"layout")
        blob = fh.read(length + 1)
        if len(blob) != length:
            raise CheckpointError(
                path, "truncated",
                f"payload is {len(blob)} bytes, header promises {length}")
        if hashlib.sha256(blob).digest() != digest:
            raise CheckpointError(
                path, "digest",
                "payload SHA-256 does not match the header (torn write "
                "or bit rot)")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(path, "unpickle",
                              f"payload failed to unpickle: {exc}") from exc


class CheckpointStore:
    """A directory of sequentially numbered durable checkpoints.

    ``save(payload)`` writes ``ckpt-<seq>.bin`` atomically and prunes old
    files beyond ``keep``; ``load_latest()`` returns the newest payload
    that passes verification, *skipping* corrupt/truncated/foreign files
    (each skip is reported through ``on_skip(path, error)``), so a crash
    mid-write — or a damaged newest file — degrades to the previous good
    checkpoint instead of killing recovery.
    """

    def __init__(self, directory, keep=3, on_skip=None):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.keep = max(1, int(keep))
        self.on_skip = on_skip
        self._seq = self._max_seq()

    def _entries(self):
        """Sorted (seq, path) pairs of files matching the naming scheme."""
        entries = []
        for name in os.listdir(self.directory):
            if not (name.startswith("ckpt-") and name.endswith(".bin")):
                continue
            stem = name[5:-4]
            if not stem.isdigit():
                continue
            entries.append((int(stem), os.path.join(self.directory, name)))
        entries.sort()
        return entries

    def _max_seq(self):
        entries = self._entries()
        return entries[-1][0] if entries else 0

    def path_for(self, seq):
        return os.path.join(self.directory, f"ckpt-{seq:08d}.bin")

    def save(self, payload):
        """Persist ``payload`` as the next checkpoint; returns its path."""
        self._seq += 1
        path = self.path_for(self._seq)
        save_checkpoint(path, payload)
        self._prune()
        return path

    def _prune(self):
        entries = self._entries()
        for _seq, path in entries[:-self.keep]:
            try:
                os.unlink(path)
            except OSError:
                pass

    def load_latest(self):
        """(payload, path) of the newest verifiable checkpoint.

        Returns ``(None, None)`` when no usable checkpoint exists.
        Corrupt files are skipped newest-first (and surfaced through
        ``on_skip``), never deleted — post-mortem debugging may want
        them.
        """
        for _seq, path in reversed(self._entries()):
            try:
                return load_checkpoint(path), path
            except CheckpointError as exc:
                if self.on_skip is not None:
                    self.on_skip(path, exc)
        return None, None

    def __repr__(self):
        return (f"CheckpointStore({self.directory!r}, "
                f"seq={self._seq}, keep={self.keep})")


def checkpoint(sim, link):
    """Snapshot a simulator and a link (with its scheduler) jointly."""
    return {
        # != not `is not`: each ``link._finish`` access builds a fresh
        # bound method, so identity never matches; equality compares the
        # underlying function and instance.
        "sim": sim.snapshot(keep=lambda e: e.callback != link._finish),
        "link": link.snapshot(),
    }


def rollback(sim, link, snap):
    """Restore a joint :func:`checkpoint`; returns the packet uid map.

    The simulator is restored first (the clock must precede the
    in-flight finish time before the link re-arms it).
    """
    sim.restore(snap["sim"])
    return link.restore(snap["link"], rearm=True)
