"""Joint checkpoint/rollback of a Simulator + Link + scheduler stack.

The individual pieces each know how to snapshot themselves
(``scheduler.snapshot()``, ``link.snapshot()``, ``sim.snapshot()``); the
subtlety a joint checkpoint must handle is the in-flight packet's finish
event, which lives in the simulator queue *and* is re-armed by
``Link.restore``.  :func:`checkpoint` excludes it from the simulator
snapshot so :func:`rollback` neither loses nor doubles it.

Checkpoints are in-process: simulator callbacks (traffic sources, fault
actions) are captured by reference.  Scheduler-only snapshots
(``scheduler.snapshot()``) are plain data and picklable.
"""

__all__ = ["checkpoint", "rollback"]


def checkpoint(sim, link):
    """Snapshot a simulator and a link (with its scheduler) jointly."""
    return {
        # != not `is not`: each ``link._finish`` access builds a fresh
        # bound method, so identity never matches; equality compares the
        # underlying function and instance.
        "sim": sim.snapshot(keep=lambda e: e.callback != link._finish),
        "link": link.snapshot(),
    }


def rollback(sim, link, snap):
    """Restore a joint :func:`checkpoint`; returns the packet uid map.

    The simulator is restored first (the clock must precede the
    in-flight finish time before the link re-arms it).
    """
    sim.restore(snap["sim"])
    return link.restore(snap["link"], rearm=True)
