"""repro.faults — deterministic fault injection, live reconfiguration
helpers, and checkpoint/restore for the scheduler zoo.

Three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (a seeded, deterministic
  schedule of adverse events) and :class:`FaultInjector` (compiles a
  plan into simulator events, emitting typed
  :class:`~repro.obs.events.FaultEvent` records).
* :mod:`repro.faults.chaos` — canned scenarios (link flap, churn storm,
  share renegotiation, buffer pressure) run under the invariant checker
  with an exact conservation verdict; the CI smoke gate and the
  ``python -m repro chaos`` entry point.
* :mod:`repro.faults.checkpoint` — joint Simulator+Link+scheduler
  checkpoints for in-process rollback.
"""

from repro.faults.chaos import (
    CHAOS_SCHEDULERS,
    SCENARIOS,
    ChaosResult,
    run_all,
    run_chaos,
)
from repro.faults.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointStore,
    checkpoint,
    load_checkpoint,
    rollback,
    save_checkpoint,
)
from repro.faults.plan import FaultAction, FaultInjector, FaultPlan

__all__ = [
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "ChaosResult",
    "SCENARIOS",
    "CHAOS_SCHEDULERS",
    "run_chaos",
    "run_all",
    "checkpoint",
    "rollback",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointStore",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]
