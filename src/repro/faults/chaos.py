"""Chaos scenarios: canned fault plans with pass/fail verdicts.

Each scenario builds a seeded traffic pattern and a seeded
:class:`~repro.faults.plan.FaultPlan`, runs them through a
Simulator + Link + scheduler stack with the full
:class:`~repro.obs.invariants.InvariantChecker` attached, drains the
system, and checks the conservation ledger
``arrivals == departures + drops + backlog`` exactly.  A scenario passes
only with *zero* invariant violations and a balanced ledger — the
robustness acceptance gate (also wired into CI as the ``chaos-smoke``
job, and runnable by hand via ``python -m repro chaos``).

Scenarios
---------
``link_flap``
    Repeated outage windows plus a degradation window (rate halved and
    restored); arrivals keep queueing throughout.
``churn_storm``
    Short-lived flows arrive, burst and leave mid-run.  On hierarchical
    schedulers the storm uses live subtree attach/detach instead of flat
    add/remove, exercising re-flattening and rate rebasing.
``share_renegotiation``
    A storm of ``set_share`` calls over random flows (and, on
    hierarchies, interior classes) during a busy period.
``buffer_pressure``
    Per-flow caps (drop-front) plus a shared-buffer ramp
    (longest-queue-drop) under overload.
"""

import random

from repro.errors import InvariantViolation

__all__ = ["SCENARIOS", "CHAOS_SCHEDULERS", "ChaosResult", "run_chaos",
           "run_all"]

SCENARIOS = ("link_flap", "churn_storm", "share_renegotiation",
             "buffer_pressure")

#: Schedulers the chaos harness knows how to build.  The exact-GPS
#: reference schedulers (wfq, wf2q) are deliberately absent: they refuse
#: live reconfiguration and evicting drop policies by contract.
CHAOS_SCHEDULERS = ("fifo", "wrr", "drr", "scfq", "sfq", "vclock", "ffq",
                    "wf2qplus", "hwf2qplus", "hwfq", "hscfq", "hsfq")

_HIER = {"hwf2qplus": "wf2qplus", "hwfq": "wfq", "hscfq": "scfq",
         "hsfq": "sfq"}


def _build_scheduler(name, rate, flows):
    """Instantiate a chaos-capable scheduler with ``flows`` leaves."""
    from repro.core import (
        DRRScheduler,
        FFQScheduler,
        FIFOScheduler,
        HPFQScheduler,
        SCFQScheduler,
        SFQScheduler,
        VirtualClockScheduler,
        WF2QPlusScheduler,
        WRRScheduler,
    )

    flat = {
        "fifo": FIFOScheduler,
        "wrr": WRRScheduler,
        "drr": DRRScheduler,
        "scfq": SCFQScheduler,
        "sfq": SFQScheduler,
        "vclock": VirtualClockScheduler,
        "ffq": FFQScheduler,
        "wf2qplus": WF2QPlusScheduler,
    }
    if name in flat:
        sched = flat[name](rate)
        for i in range(flows):
            sched.add_flow(str(i), 1 + (i % 3))
        return sched
    if name in _HIER:
        from repro.config import leaf, node
        groups, chunk = [], 4
        for g in range(0, flows, chunk):
            leaves = [leaf(str(i), 1 + (i % 3))
                      for i in range(g, min(g + chunk, flows))]
            groups.append(node(f"g{g // chunk}", len(leaves), leaves))
        return HPFQScheduler(node("root", 1, groups), rate,
                             policy=_HIER[name])
    raise ValueError(
        f"unknown chaos scheduler {name!r}; choose from {CHAOS_SCHEDULERS}"
    )


def _make_plan(scenario, scheduler, sched, seed, duration, flows, length):
    """Build the scenario's fault plan for an already-built scheduler."""
    from repro.faults.plan import FaultPlan

    plan = FaultPlan(seed=seed)
    hierarchical = scheduler in _HIER
    if scenario == "link_flap":
        # Three short outages and one halved-rate window, all inside the
        # traffic window so arrivals pile up against the dead link.
        for k in range(3):
            plan.link_outage(duration * (0.15 + 0.25 * k), duration * 0.06)
        plan.link_degradation(duration * 0.45, duration * 0.2)
    elif scenario == "churn_storm":
        if hierarchical:
            from repro.config import leaf, node
            rng = random.Random(seed + 1)
            parents = sorted(
                n for n in sched.spec.node_names()
                if not sched.spec.is_leaf(n) and n != sched.spec.root.name
            )
            for k in range(max(3, flows // 2)):
                born = duration * (0.05 + 0.5 * rng.random())
                dies = born + duration * (0.2 + 0.2 * rng.random())
                parent = rng.choice(parents)
                sub = node(f"churn-{k}", rng.randint(1, 4),
                           [leaf(f"churn-{k}-leaf", 1)])
                plan.attach(born, parent, sub)
                plan.enqueue_burst(born, f"churn-{k}-leaf",
                                   1 + rng.randrange(4), length)
                plan.detach(dies, f"churn-{k}")
        else:
            plan.churn_storm(duration * 0.05, duration * 0.85,
                             count=max(4, flows), length=length)
    elif scenario == "share_renegotiation":
        targets = [str(i) for i in range(flows)]
        if hierarchical:
            targets += sorted(
                n for n in sched.spec.node_names()
                if not sched.spec.is_leaf(n) and n != sched.spec.root.name
            )
        plan.share_storm(duration * 0.05, duration * 0.9, targets,
                         count=3 * flows)
    elif scenario == "buffer_pressure":
        for i in range(0, flows, 2):
            plan.buffer_limit(duration * 0.05, str(i), 4, "front")
        plan.buffer_ramp(duration * 0.2, duration * 0.5,
                         high=4 * flows, low=max(2, flows // 2),
                         policy="longest")
    else:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; choose from {SCENARIOS}"
        )
    return plan


class ChaosResult:
    """Outcome of one chaos scenario run."""

    __slots__ = ("scenario", "scheduler", "seed", "duration", "arrivals",
                 "departures", "drops", "backlog", "balanced",
                 "faults_applied", "events_checked", "violation")

    def __init__(self, scenario, scheduler, seed, duration, conservation,
                 faults_applied, events_checked, violation):
        self.scenario = scenario
        self.scheduler = scheduler
        self.seed = seed
        self.duration = duration
        self.arrivals = conservation["arrivals"]
        self.departures = conservation["departures"]
        self.drops = conservation["drops"]
        self.backlog = conservation["backlog"]
        self.balanced = conservation["balanced"]
        self.faults_applied = faults_applied
        self.events_checked = events_checked
        self.violation = violation

    @property
    def ok(self):
        return self.violation is None and self.balanced

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "ok": self.ok,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "drops": self.drops,
            "backlog": self.backlog,
            "balanced": self.balanced,
            "faults_applied": self.faults_applied,
            "events_checked": self.events_checked,
            "violation": (None if self.violation is None
                          else str(self.violation)),
        }

    def format(self):
        status = "OK " if self.ok else "FAIL"
        line = (f"{status} {self.scenario:20s} {self.scheduler:10s} "
                f"faults={self.faults_applied:3d} "
                f"arrivals={self.arrivals:5d} departed={self.departures:5d} "
                f"dropped={self.drops:4d} "
                f"events={self.events_checked}")
        if self.violation is not None:
            line += f"\n     violation: {self.violation}"
        elif not self.balanced:
            line += "\n     conservation ledger does not balance"
        return line

    def __repr__(self):
        return (f"ChaosResult({self.scenario!r}, {self.scheduler!r}, "
                f"ok={self.ok})")


def run_chaos(scenario, scheduler="wf2qplus", seed=1, duration=2.0,
              flows=8, rate=1e6, length=8000.0, load=1.1, sinks=()):
    """Run one chaos scenario; returns a :class:`ChaosResult`.

    ``load`` is the offered load as a fraction of link capacity (> 1
    keeps the system busy so faults land mid-busy-period).  Extra
    ``sinks`` (e.g. a JSONLSink) are attached next to the invariant
    checker.
    """
    from repro.core.packet import Packet
    from repro.faults.plan import FaultInjector
    from repro.obs import InvariantChecker
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

    sched = _build_scheduler(scheduler, rate, flows)
    checker = InvariantChecker()
    # Extra sinks first: a violation raised by the checker must not have
    # already truncated their view of the stream mid-event.
    sched.attach_observer(*sinks, checker)
    sim = Simulator()
    link = Link(sim, sched)

    # Seeded Poisson-ish arrivals per flow, jointly offering ``load`` times
    # the link capacity across the traffic window.
    rng = random.Random(seed)
    per_flow_rate = load * rate / (length * flows)  # packets per second
    for i in range(flows):
        flow_id = str(i)
        t = 0.0
        while True:
            t += rng.expovariate(per_flow_rate)
            if t >= duration:
                break
            sim.schedule(t, link.send, Packet(flow_id, length))

    plan = _make_plan(scenario, scheduler, sched, seed, duration, flows,
                      length)
    injector = FaultInjector(plan, link).arm()

    violation = None
    try:
        sim.run()  # traffic window, faults, then drain to empty
    except InvariantViolation as exc:
        violation = exc
    return ChaosResult(
        scenario, scheduler, seed, duration, sched.conservation(),
        injector.applied, checker.events_checked, violation,
    )


def run_all(scenarios=SCENARIOS, scheduler="wf2qplus", **kwargs):
    """Run several scenarios; returns the list of results."""
    return [run_chaos(name, scheduler=scheduler, **kwargs)
            for name in scenarios]
