"""A calendar queue: the O(1)-amortized priority structure behind the
simulator's ``engine="calendar"`` mode.

The classic structure (Brown, CACM 1988) hashes each pending entry into a
bucket by its timestamp — ``bucket = floor(t / width) mod nbuckets`` — and
dequeues by scanning the "current year": advance a slot cursor bucket by
bucket, serving entries whose home slot has been reached.  With the bucket
width tracking the mean gap between pending timestamps, each operation
touches O(1) buckets amortized, replacing the O(log n) sift of a binary
heap with a handful of list operations.

Determinism
-----------
Entries are the simulator's ``(time, priority, seq, event)`` tuples —
``seq`` is unique, so plain tuple comparison is a *total* order identical
to the heap engine's, and a bucket ``sort()`` never falls through to
comparing events.  Buckets are kept reverse-sorted (the minimum at the
tail, so serving is an O(1) ``list.pop()``); a push marks its bucket dirty
and the sort is deferred to the next scan that reaches it.  Because the
scan serves entries in exact ``(time, priority, seq)`` order and the
simulator drains one entry at a time, the pop sequence is byte-identical
to ``heapq`` on the same pushes — the property the differential suite
pins.

Two float-safety rules keep the scan exact:

* An entry's *home slot* is always computed by the same expression,
  ``int(t / width)``, at push time and at scan time, so rounding can never
  disagree about which year an entry belongs to (the scan condition is
  "home slot <= cursor", not a recomputed bucket boundary).
* The cursor rewinds on any push whose home slot precedes it, so no live
  entry is ever left behind the scan.

Robustness
----------
A full fruitless lap (every bucket either empty or holding only
future-year entries) falls back to a *direct search* — the global minimum
over all bucket tails — and teleports the cursor to its year, bounding any
single dequeue at O(nbuckets) even for pathological gaps.  Bucket count
and width recalibrate from the live population every ``O(size)``
operations (see :meth:`_calibrate`); a population whose timestamps have
zero spread cannot be hashed apart at any width, so it raises the
:attr:`degenerate` flag and the simulator migrates the entries to the
heap engine (heapify preserves the same total order).
"""

__all__ = ["CalendarQueue"]

#: Bucket-count bounds: powers of two so the bucket index is a mask.
MIN_BUCKETS = 16
MAX_BUCKETS = 1 << 15

#: A population at least this large with zero timestamp spread marks the
#: queue degenerate (a single eternally re-sorted bucket beats no heap).
DEGENERATE_MIN = 256


class CalendarQueue:
    """A bucket-array priority queue over ``(time, priority, seq, event)``
    tuples, byte-identical in pop order to ``heapq`` on the same pushes.
    """

    #: Width targets this many entries per bucket-year.  The classic rule
    #: is 1, but CPython inverts the constant-factor economics: a C-level
    #: ``list.sort`` over ~16 tuples costs far less per entry than one
    #: interpreted bucket-advance, so wider buckets amortize the scan.
    LOAD = 16

    __slots__ = ("_buckets", "_dirty", "_nbuckets", "_mask", "_width",
                 "_slot", "_size", "_pushes", "_check_at", "_scan_debt",
                 "_gen", "resizes", "degenerate")

    def __init__(self, width=1.0, nbuckets=MIN_BUCKETS):
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        if nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two: {nbuckets}")
        self._buckets = [[] for _ in range(nbuckets)]
        self._dirty = [False] * nbuckets
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        #: Scan cursor: the absolute slot (year * nbuckets + bucket) the
        #: next dequeue starts from.  Invariant: no live entry's home slot
        #: precedes it.
        self._slot = 0
        self._size = 0
        #: Pushes since the last calibration; recalibrate at _check_at.
        self._pushes = 0
        self._check_at = 256
        #: Empty buckets scanned since the last calibration — a drain-only
        #: phase never pushes, so sustained scanning is its recalibration
        #: trigger.
        self._scan_debt = 0
        #: Bucket-array generation, bumped by every rebuild: the
        #: simulator's inlined run loop hoists the bucket array into
        #: locals and re-syncs them when this moves.
        self._gen = 0
        #: Bucket-array rebuilds (resize or width change) — surfaced in
        #: ``repro stats`` / profiler reports.
        self.resizes = 0
        #: True once the population cannot be hashed apart (zero timestamp
        #: spread at scale): the simulator migrates to the heap engine.
        self.degenerate = False

    def __len__(self):
        return self._size

    @property
    def width(self):
        return self._width

    @property
    def nbuckets(self):
        return self._nbuckets

    # ------------------------------------------------------------------
    def push(self, entry):
        """Insert one ``(time, priority, seq, event)`` tuple."""
        s = int(entry[0] / self._width)
        if s < self._slot:
            self._slot = s
        idx = s & self._mask
        bucket = self._buckets[idx]
        bucket.append(entry)
        if len(bucket) > 1:
            self._dirty[idx] = True
        self._size += 1
        self._pushes += 1
        if self._pushes >= self._check_at:
            self._calibrate()

    def _locate(self):
        """Advance the cursor to the bucket holding the global minimum and
        return that bucket (its tail is the minimum).  None when empty.
        """
        if not self._size:
            return None
        buckets = self._buckets
        dirty = self._dirty
        mask = self._mask
        width = self._width
        slot = self._slot
        for _ in range(self._nbuckets + 1):
            idx = slot & mask
            bucket = buckets[idx]
            if bucket:
                if dirty[idx]:
                    bucket.sort(reverse=True)
                    dirty[idx] = False
                if int(bucket[-1][0] / width) <= slot:
                    self._slot = slot
                    return bucket
            slot += 1
            self._scan_debt += 1
        # A full fruitless lap: every entry lives in a future year.  Direct
        # search for the global minimum keeps the dequeue exact (and O(n)
        # at worst) regardless of how sparse the timeline is.
        best = None
        best_bucket = None
        for idx, bucket in enumerate(buckets):
            if not bucket:
                continue
            if dirty[idx]:
                bucket.sort(reverse=True)
                dirty[idx] = False
            tail = bucket[-1]
            if best is None or tail < best:
                best = tail
                best_bucket = bucket
        self._slot = int(best[0] / width)
        return best_bucket

    def pop(self):
        """Remove and return the minimum entry; IndexError when empty."""
        if self._scan_debt > (self._nbuckets << 2):
            self._calibrate()
        bucket = self._locate()
        if bucket is None:
            raise IndexError("pop from an empty CalendarQueue")
        self._size -= 1
        return bucket.pop()

    def peek(self):
        """The minimum entry without removing it, or None when empty."""
        bucket = self._locate()
        return None if bucket is None else bucket[-1]

    def pop_located(self, bucket):
        """Pop the tail of a bucket just returned by :meth:`_locate`.

        The simulator's run loop peeks (to honour its ``until`` horizon)
        and then pops the same entry; splitting locate from pop saves the
        second scan.
        """
        self._size -= 1
        return bucket.pop()

    def entries(self):
        """Iterate all queued entries (any order, tombstones included)."""
        for bucket in self._buckets:
            yield from bucket

    def compact(self, is_dead):
        """Drop every entry whose event ``is_dead`` flags; return count.

        The simulator calls this when cancelled tombstones dominate —
        the calendar analogue of the heap engine's lazy re-heapify.
        Surviving buckets keep their order flags (filtering a sorted
        list preserves its order).
        """
        removed = 0
        for bucket in self._buckets:
            if not bucket:
                continue
            kept = [entry for entry in bucket if not is_dead(entry[3])]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                bucket[:] = kept
        self._size -= removed
        return removed

    # ------------------------------------------------------------------
    def _calibrate(self):
        """Re-fit bucket count and width to the live population.

        Triggered every ``max(256, size)`` pushes and by sustained
        empty-bucket scanning, so its O(size + nbuckets) cost is amortized
        O(1) per operation.  The width targets :data:`LOAD` mean gaps
        between pending timestamps (LOAD entries per bucket-year); the
        bucket count targets 4*size/LOAD (see the sizing comment below),
        clamped to powers of two in [MIN_BUCKETS, MAX_BUCKETS].
        Entries are rehashed only when either parameter actually moves
        (width by more than 2x either way).
        """
        self._pushes = 0
        self._scan_debt = 0
        size = self._size
        if size == 0:
            self._check_at = 256
            return
        # C-speed scan: flatten + min/max over a times list beats an
        # interpreted per-entry comparison loop ~4x, and calibration is
        # the calendar's single largest interpreted cost under growth.
        entries = [entry for bucket in self._buckets for entry in bucket]
        times = [entry[0] for entry in entries]
        lo = min(times)
        hi = max(times)
        span = hi - lo
        load = self.LOAD
        # Anticipatory sizing: target 4x the current population so a
        # monotone growth phase rebuilds every two doublings instead of
        # every one.  Extra buckets don't slow the scan — the cursor
        # walks *years* (width is set by LOAD alone), so a larger array
        # only reduces year aliasing.
        nbuckets = MIN_BUCKETS
        while nbuckets * load < size * 4 and nbuckets < MAX_BUCKETS:
            nbuckets <<= 1
        if span > 0:
            width = span * load / size
            # Underflow/overflow guards: a width too small to divide by
            # (or one that maps the largest timestamp to an infinite
            # slot) cannot hash the population apart either.
            if not width > 0 or hi / width == float("inf"):
                span = 0
        if span <= 0:
            # Zero (or sub-float) spread: no width can hash this apart.
            if size >= DEGENERATE_MIN:
                self.degenerate = True
            self._check_at = max(256, size)
            return
        old_width = self._width
        if (nbuckets == self._nbuckets
                and old_width / 2 < width < old_width * 2):
            self._check_at = max(256, size)
            return
        self._buckets = [[] for _ in range(nbuckets)]
        self._dirty = [False] * nbuckets
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._slot = int(lo / width)
        buckets = self._buckets
        dirty = self._dirty
        mask = self._mask
        for entry in entries:
            idx = int(entry[0] / width) & mask
            bucket = buckets[idx]
            bucket.append(entry)
            if len(bucket) > 1:
                dirty[idx] = True
        self._gen += 1
        self.resizes += 1
        self._check_at = max(256, size)

    def __repr__(self):
        return (f"CalendarQueue(size={self._size}, "
                f"nbuckets={self._nbuckets}, width={self._width!r}, "
                f"resizes={self.resizes})")
