"""Core data structures used by the schedulers.

The only structure every PFQ algorithm needs is a priority queue over flows
keyed by a virtual-time tag, with support for *changing* a flow's key when a
new packet reaches the head of its queue.  :class:`IndexedHeap` provides
exactly that in O(log N) per operation, matching the complexity claim of
WF2Q+ (Section 3.4 of the paper).

:class:`CalendarQueue` is the simulator-side counterpart: an O(1)-amortized
event queue (bucketed by timestamp, recalibrating width/bucket-count from
the live population) whose pop order is byte-identical to ``heapq`` on the
simulator's ``(time, priority, seq, event)`` entries.
"""

from repro.dstruct.calendar import CalendarQueue
from repro.dstruct.heap import IndexedHeap

__all__ = ["CalendarQueue", "IndexedHeap"]
