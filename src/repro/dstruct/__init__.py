"""Core data structures used by the schedulers.

The only structure every PFQ algorithm needs is a priority queue over flows
keyed by a virtual-time tag, with support for *changing* a flow's key when a
new packet reaches the head of its queue.  :class:`IndexedHeap` provides
exactly that in O(log N) per operation, matching the complexity claim of
WF2Q+ (Section 3.4 of the paper).
"""

from repro.dstruct.heap import IndexedHeap

__all__ = ["IndexedHeap"]
