"""An indexed binary min-heap with decrease/increase-key.

Python's :mod:`heapq` cannot update the priority of an element in place,
which fair queueing schedulers need every time a session's head-of-queue
packet changes (its virtual finish tag moves).  The usual workarounds —
lazy deletion or rebuild — either inflate the heap or cost O(N).

:class:`IndexedHeap` keeps a ``position`` map from item to heap slot, so

* ``push``        — O(log N)
* ``pop``         — O(log N)
* ``update``      — O(log N) (key may move in either direction)
* ``remove``      — O(log N)
* ``replace_top`` — O(log N), one sift (vs two for pop + push)
* ``peek``        — O(1)
* ``min_key``     — O(1)

Ties are broken by insertion order (FIFO among equal keys), which the
schedulers rely on for deterministic, reproducible service order.
Re-keying an item (``update`` with a *changed* key) refreshes its
tiebreak, so it queues behind existing entries with the same key; an
``update`` to the key the item already has is a no-op and keeps its
position among ties.

Keys only need to support ``<``; items must be hashable and unique.

Heap slots are plain ``(key, seq, item)`` tuples, so every sift
comparison is a single C-level ``tuple.__lt__`` instead of a Python
method call — the dominant cost of heap churn in the scheduler hot path.
``seq`` is unique per heap, so a comparison never falls through to
``item`` (items need not be comparable); when ``key`` is itself a tuple
(tag, index), the nested comparison still runs entirely in C.

For the hottest loops (the per-level promotion scans of WF2Q+ and the
H-PFQ restart chain), :attr:`IndexedHeap.entries` exposes the raw entry
list itself: ``entries[0]`` is the min ``(key, seq, item)`` tuple and
``if entries:`` is a plain list truth test — zero method calls per
probe.  The list is the live backing store; callers must treat it as
read-only.
"""

__all__ = ["IndexedHeap"]


class IndexedHeap:
    """Binary min-heap over unique hashable items with updatable keys."""

    __slots__ = ("_heap", "_pos", "_seq", "entries", "pos")

    def __init__(self):
        #: Raw (key, seq, item) entry list; ``entries`` is a public
        #: read-only alias bound to the *same* list object (every mutation
        #: below is in place, so the alias never goes stale).  ``pos`` is
        #: the matching alias of the item -> slot map, for membership
        #: probes (``item in heap.pos``) without a method call.
        self._heap = []
        self.entries = self._heap
        self._pos = {}    # item -> heap index
        self.pos = self._pos
        self._seq = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)

    def __contains__(self, item):
        return item in self._pos

    def __iter__(self):
        """Iterate over items in arbitrary (heap) order."""
        return (entry[2] for entry in self._heap)

    def key_of(self, item):
        """Return the current key of ``item`` (KeyError if absent)."""
        return self._heap[self._pos[item]][0]

    def peek(self):
        """Return the (item, key) pair with the smallest key without removal."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        key, _seq, item = self._heap[0]
        return item, key

    def peek_item(self):
        """Return only the item with the smallest key."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        return self._heap[0][2]

    #: Alias with the list-index spelling used by hot paths.
    top_item = peek_item

    def min_key(self):
        """Return the smallest key currently in the heap."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        return self._heap[0][0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, item, key):
        """Insert ``item`` with ``key``.  Raises ValueError if present."""
        if item in self._pos:
            raise ValueError(f"item already in heap: {item!r}")
        entry = (key, self._seq, item)
        self._seq += 1
        heap = self._heap
        heap.append(entry)
        # No _pos preset: the sift writes the entry's final slot.
        self._sift_up(len(heap) - 1)

    def pop(self):
        """Remove and return the (item, key) pair with the smallest key."""
        heap = self._heap
        if not heap:
            raise IndexError("pop from an empty heap")
        key, _seq, item = heap[0]
        last = heap.pop()
        del self._pos[item]
        if heap:
            heap[0] = last
            self._sift_down(0)
        return item, key

    def replace_top(self, item, key):
        """Replace the smallest entry with ``(item, key)`` in one sift.

        Equivalent to ``pop()`` followed by ``push(item, key)`` — including
        the fresh FIFO tiebreak for the incoming entry — but with a single
        sift-down instead of two sifts.  ``item`` may be the evicted item
        itself (re-keying the top) or any item not already in the heap.
        Returns the evicted ``(item, key)`` pair.
        """
        heap = self._heap
        if not heap:
            raise IndexError("replace_top on an empty heap")
        old_key, _seq, old_item = heap[0]
        pos = self._pos
        del pos[old_item]
        if item in pos:
            pos[old_item] = 0  # undo before failing
            raise ValueError(f"item already in heap: {item!r}")
        heap[0] = (key, self._seq, item)
        self._seq += 1
        self._sift_down(0)
        return old_item, old_key

    #: :func:`heapq.heapreplace` analogue (pop the min, push a new entry,
    #: one sift).  Same operation as :meth:`replace_top`.
    pop_push = replace_top

    def move_top_to(self, other, key):
        """Pop this heap's min item and push it into ``other`` under ``key``.

        Exactly ``item, _ = self.pop(); other.push(item, key)`` (including
        the fresh FIFO tiebreak in ``other``) fused into one call — the
        eligible/ineligible migrations of the schedulers are all top-to-heap
        moves, and the pair accounts for most of their heap traffic.
        Returns the moved item.
        """
        heap = self._heap
        if not heap:
            raise IndexError("move_top_to on an empty heap")
        item = heap[0][2]
        last = heap.pop()
        del self._pos[item]
        if heap:
            heap[0] = last
            self._sift_down(0)
        if item in other._pos:
            raise ValueError(f"item already in heap: {item!r}")
        oheap = other._heap
        oheap.append((key, other._seq, item))
        other._seq += 1
        other._sift_up(len(oheap) - 1)
        return item

    def update(self, item, key):
        """Change the key of ``item`` (KeyError if absent).

        A changed key refreshes the FIFO tiebreak (the item queues behind
        existing equal keys, as a fresh push would).  An *unchanged* key is
        a no-op: the item keeps its position among ties instead of being
        gratuitously reshuffled behind them.
        """
        index = self._pos[item]
        old_key = self._heap[index][0]
        if key < old_key:
            self._heap[index] = (key, self._seq, item)
            self._seq += 1
            self._sift_up(index)
        elif old_key < key:
            self._heap[index] = (key, self._seq, item)
            self._seq += 1
            self._sift_down(index)
        # else: keys compare equal — keep entry and tiebreak untouched.

    def push_or_update(self, item, key):
        """Insert ``item`` or change its key if already present."""
        if item in self._pos:
            self.update(item, key)
        else:
            self.push(item, key)

    def remove(self, item):
        """Remove ``item`` (KeyError if absent) and return its key."""
        index = self._pos.pop(item)
        heap = self._heap
        key = heap[index][0]
        last = heap.pop()
        if index < len(heap):
            heap[index] = last
            # The displaced entry may need to move either way (each sift
            # records the entry's final slot in _pos).
            self._sift_up(index)
            self._sift_down(self._pos[last[2]])
        return key

    def discard(self, item):
        """Remove ``item`` if present; return True if it was removed."""
        if item in self._pos:
            self.remove(item)
            return True
        return False

    def clear(self):
        """Remove every item."""
        self._heap.clear()
        self._pos.clear()

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def snapshot(self, item_token=None):
        """Plain-data copy of the heap for checkpoint/restore.

        The entry list is captured slot-for-slot (not just as a key
        multiset): the heap's internal layout encodes the FIFO tiebreak
        history, and restore must reproduce *identical* future pop order.
        ``item_token`` maps each stored item to a serialisable token (e.g.
        a node name); identity by default.
        """
        if item_token is None:
            entries = [(key, seq, item) for key, seq, item in self._heap]
        else:
            entries = [(key, seq, item_token(item)) for key, seq, item
                       in self._heap]
        return {"seq": self._seq, "entries": entries}

    def restore(self, snap, item_resolve=None):
        """Rebuild the heap from a :meth:`snapshot` in place.

        Mutates the existing backing list so the public ``entries``/``pos``
        aliases held by hot paths stay valid.  ``item_resolve`` inverts the
        ``item_token`` used at snapshot time.
        """
        heap = self._heap
        heap.clear()
        if item_resolve is None:
            heap.extend(tuple(e) for e in snap["entries"])
        else:
            heap.extend((key, seq, item_resolve(token))
                        for key, seq, token in snap["entries"])
        pos = self._pos
        pos.clear()
        for index, entry in enumerate(heap):
            pos[entry[2]] = index
        self._seq = snap["seq"]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sift_up(self, index):
        heap = self._heap
        pos = self._pos
        entry = heap[index]
        while index > 0:
            parent = (index - 1) >> 1
            parent_entry = heap[parent]
            if entry < parent_entry:
                heap[index] = parent_entry
                pos[parent_entry[2]] = index
                index = parent
            else:
                break
        heap[index] = entry
        pos[entry[2]] = index

    def _sift_down(self, index):
        heap = self._heap
        pos = self._pos
        size = len(heap)
        entry = heap[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and heap[right] < heap[child]:
                child = right
            child_entry = heap[child]
            if child_entry < entry:
                heap[index] = child_entry
                pos[child_entry[2]] = index
                index = child
            else:
                break
        heap[index] = entry
        pos[entry[2]] = index

    def check_invariants(self):
        """Validate heap order and the position map (for tests)."""
        for index, entry in enumerate(self._heap):
            if self._pos[entry[2]] != index:
                raise AssertionError(
                    f"position map stale for {entry[2]!r}: "
                    f"map says {self._pos[entry[2]]}, actual {index}"
                )
            child = 2 * index + 1
            for c in (child, child + 1):
                if c < len(self._heap) and self._heap[c] < entry:
                    raise AssertionError(
                        f"heap order violated at index {index} vs child {c}"
                    )
        if len(self._pos) != len(self._heap):
            raise AssertionError("position map size mismatch")
