"""An indexed binary min-heap with decrease/increase-key.

Python's :mod:`heapq` cannot update the priority of an element in place,
which fair queueing schedulers need every time a session's head-of-queue
packet changes (its virtual finish tag moves).  The usual workarounds —
lazy deletion or rebuild — either inflate the heap or cost O(N).

:class:`IndexedHeap` keeps a ``position`` map from item to heap slot, so

* ``push``    — O(log N)
* ``pop``     — O(log N)
* ``update``  — O(log N) (key may move in either direction)
* ``remove``  — O(log N)
* ``peek``    — O(1)
* ``min_key`` — O(1)

Ties are broken by insertion order (FIFO among equal keys), which the
schedulers rely on for deterministic, reproducible service order.

Keys only need to support ``<``; items must be hashable and unique.
"""

__all__ = ["IndexedHeap"]


class _Entry:
    """A heap slot: (key, tiebreak sequence, item)."""

    __slots__ = ("key", "seq", "item")

    def __init__(self, key, seq, item):
        self.key = key
        self.seq = seq
        self.item = item

    def __lt__(self, other):
        if self.key < other.key:
            return True
        if other.key < self.key:
            return False
        return self.seq < other.seq

    def __repr__(self):  # pragma: no cover - debug aid
        return f"_Entry(key={self.key!r}, seq={self.seq}, item={self.item!r})"


class IndexedHeap:
    """Binary min-heap over unique hashable items with updatable keys."""

    def __init__(self):
        self._heap = []
        self._pos = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)

    def __contains__(self, item):
        return item in self._pos

    def __iter__(self):
        """Iterate over items in arbitrary (heap) order."""
        return (entry.item for entry in self._heap)

    def key_of(self, item):
        """Return the current key of ``item`` (KeyError if absent)."""
        return self._heap[self._pos[item]].key

    def peek(self):
        """Return the (item, key) pair with the smallest key without removal."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        entry = self._heap[0]
        return entry.item, entry.key

    def peek_item(self):
        """Return only the item with the smallest key."""
        return self.peek()[0]

    def min_key(self):
        """Return the smallest key currently in the heap."""
        return self.peek()[1]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, item, key):
        """Insert ``item`` with ``key``.  Raises ValueError if present."""
        if item in self._pos:
            raise ValueError(f"item already in heap: {item!r}")
        entry = _Entry(key, self._seq, item)
        self._seq += 1
        self._heap.append(entry)
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop(self):
        """Remove and return the (item, key) pair with the smallest key."""
        if not self._heap:
            raise IndexError("pop from an empty heap")
        top = self._heap[0]
        last = self._heap.pop()
        del self._pos[top.item]
        if self._heap:
            self._heap[0] = last
            self._pos[last.item] = 0
            self._sift_down(0)
        return top.item, top.key

    def update(self, item, key):
        """Change the key of ``item`` (KeyError if absent)."""
        index = self._pos[item]
        entry = self._heap[index]
        old_key = entry.key
        entry.key = key
        # Refresh the tiebreak so re-keyed items queue behind equal keys,
        # matching the FIFO-among-ties convention for fresh pushes.
        entry.seq = self._seq
        self._seq += 1
        if key < old_key:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def push_or_update(self, item, key):
        """Insert ``item`` or change its key if already present."""
        if item in self._pos:
            self.update(item, key)
        else:
            self.push(item, key)

    def remove(self, item):
        """Remove ``item`` (KeyError if absent) and return its key."""
        index = self._pos.pop(item)
        entry = self._heap[index]
        last = self._heap.pop()
        if index < len(self._heap):
            self._heap[index] = last
            self._pos[last.item] = index
            # The displaced entry may need to move either way.
            self._sift_up(index)
            self._sift_down(self._pos[last.item])
        return entry.key

    def discard(self, item):
        """Remove ``item`` if present; return True if it was removed."""
        if item in self._pos:
            self.remove(item)
            return True
        return False

    def clear(self):
        """Remove every item."""
        self._heap.clear()
        self._pos.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sift_up(self, index):
        heap = self._heap
        entry = heap[index]
        while index > 0:
            parent = (index - 1) >> 1
            if entry < heap[parent]:
                heap[index] = heap[parent]
                self._pos[heap[index].item] = index
                index = parent
            else:
                break
        heap[index] = entry
        self._pos[entry.item] = index

    def _sift_down(self, index):
        heap = self._heap
        size = len(heap)
        entry = heap[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and heap[right] < heap[child]:
                child = right
            if heap[child] < entry:
                heap[index] = heap[child]
                self._pos[heap[index].item] = index
                index = child
            else:
                break
        heap[index] = entry
        self._pos[entry.item] = index

    def check_invariants(self):
        """Validate heap order and the position map (for tests)."""
        for index, entry in enumerate(self._heap):
            if self._pos[entry.item] != index:
                raise AssertionError(
                    f"position map stale for {entry.item!r}: "
                    f"map says {self._pos[entry.item]}, actual {index}"
                )
            child = 2 * index + 1
            for c in (child, child + 1):
                if c < len(self._heap) and self._heap[c] < entry:
                    raise AssertionError(
                        f"heap order violated at index {index} vs child {c}"
                    )
        if len(self._pos) != len(self._heap):
            raise AssertionError("position map size mismatch")
