"""repro.obs — structured observability for every scheduler.

The subsystem has four layers, each usable on its own:

* :mod:`repro.obs.events` — the typed event stream (enqueue / dequeue /
  drop / virtual-time / node-restart) and the :class:`EventBus` that
  schedulers emit into.  Emission is a no-op unless an observer is
  attached, so the hot path stays at seed speed.
* :mod:`repro.obs.sinks` — consumers: in-memory ring buffer, JSONL file
  trace, and streaming per-flow metrics with delay histograms.
* :mod:`repro.obs.invariants` — a checker sink that enforces the paper's
  properties (virtual-time monotonicity, SEFF eligibility, backlog
  conservation, hierarchy tag consistency) at the event where they break.
* :mod:`repro.obs.profile` — opt-in wall-clock percentiles for the
  enqueue/dequeue path, plus the batch-histogram chunk autotuner
  (:class:`ChunkAutotuner` / :func:`recommend_chunk`).

Typical use::

    from repro import WF2QPlusScheduler
    from repro.obs import InvariantChecker, JSONLSink, MetricsSink

    sched = WF2QPlusScheduler(rate=1e9)
    metrics = MetricsSink()
    sched.attach_observer(metrics, InvariantChecker(), JSONLSink("out.jsonl"))
    ...  # run a workload; a violated invariant raises at the bad event
    print(metrics.format_report())
"""

from repro.obs.events import (
    DequeueEvent,
    DropEvent,
    EnqueueEvent,
    EventBus,
    FaultEvent,
    IncidentEvent,
    NodeRestart,
    SchedulerEvent,
    VirtualTimeUpdate,
    event_from_dict,
)
from repro.obs.invariants import InvariantChecker, InvariantViolation
from repro.obs.profile import (
    CHUNK_CHOICES,
    ChunkAutotuner,
    OpStats,
    SchedulerProfiler,
    percentile,
    recommend_chunk,
)
from repro.obs.sinks import (
    CallbackSink,
    FlowMetrics,
    JSONLSink,
    MetricsSink,
    RingBufferSink,
    Sink,
    read_jsonl,
)

__all__ = [
    "SchedulerEvent",
    "EnqueueEvent",
    "DequeueEvent",
    "DropEvent",
    "VirtualTimeUpdate",
    "NodeRestart",
    "FaultEvent",
    "IncidentEvent",
    "EventBus",
    "event_from_dict",
    "Sink",
    "CallbackSink",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "MetricsSink",
    "FlowMetrics",
    "InvariantChecker",
    "InvariantViolation",
    "SchedulerProfiler",
    "OpStats",
    "percentile",
    "CHUNK_CHOICES",
    "recommend_chunk",
    "ChunkAutotuner",
]
