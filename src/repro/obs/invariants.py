"""Runtime invariant checking over the observability event stream.

:class:`InvariantChecker` is a sink: attach it to any scheduler with
``scheduler.attach_observer(InvariantChecker())`` and every enqueue /
dequeue is audited *as it happens* — a violation raises a structured
:class:`~repro.errors.InvariantViolation` carrying the offending event, so
the stack trace points at the exact operation that broke the property.

Checks (each individually switchable):

* **virtual-time-monotonic** — every virtual clock (the system V of
  WF2Q+/SCFQ/SFQ/WFQ/WF2Q, and each interior node's V in an H-PFQ tree)
  must be non-decreasing within a system busy period (the slope >= 0 side
  of eq. 27).  Resets to zero are allowed only at busy-period boundaries
  (``VirtualTimeUpdate.reset`` or an observed empty system).
* **seff-eligibility** — for schedulers that claim SEFF (WF2Q, WF2Q+),
  every dequeued packet must have been *eligible*: its virtual start tag
  cannot exceed the system virtual time at selection (Section 3.1's
  defining property of WF2Q).
* **backlog-conservation** — per scheduler, ``enqueues - dequeues - drops``
  must equal the backlog reported on every event; per flow, cumulative
  drop counts must advance by exactly one per drop event.
* **tag-consistency** — along ARRIVE / RESTART-NODE / RESET-PATH, each
  H-PFQ node's fresh tags must satisfy
  ``finish = start + head_length / rate`` with per-node non-decreasing
  start tags within a busy period; one-level dequeue records must have
  ``virtual_finish > virtual_start``.

Tolerance: comparisons accept a relative slack (``tolerance``, default
1e-9) so float workloads don't false-positive; exact types
(int/``Fraction``) are compared exactly when the tolerance is 0.

Fault awareness: a :class:`~repro.obs.events.FaultEvent` whose action
rebases tags (rate or share changes, subtree attach/detach, restore)
clears the monotonicity floors for that scheduler — reconfiguration
legitimately moves clocks and tags, and the guarantee restarts at the
fault boundary.  Backlog and drop conservation always keep auditing
across faults.
"""

from repro.errors import InvariantViolation
from repro.obs.sinks import Sink

__all__ = ["InvariantChecker", "InvariantViolation"]

#: Fault actions that legitimately rebase virtual clocks and tags, so the
#: monotonicity floors must restart from the next observation.  A link
#: outage or a flow add/remove leaves tags alone and stays fully checked.
_REBASING_FAULTS = frozenset({
    "link_rate", "link_scale", "set_share", "attach", "detach", "restore",
})


class _SchedulerAudit:
    """Mutable audit state for one scheduler name."""

    __slots__ = ("backlog", "enqueues", "dequeues", "drops", "flow_drops",
                 "virtual", "start_tags")

    def __init__(self):
        self.backlog = None          # None until seeded by the first event
        self.enqueues = 0
        self.dequeues = 0
        self.drops = 0
        self.flow_drops = {}         # flow_id -> cumulative drops
        self.virtual = {}            # node name (or None=system) -> last V
        self.start_tags = {}         # node name -> last start tag

    def new_busy_period(self):
        self.virtual.clear()
        self.start_tags.clear()


class InvariantChecker(Sink):
    """Audits an event stream; raises on the first violated invariant.

    Parameters
    ----------
    tolerance:
        Relative slack for float comparisons (0 for exact workloads).
    check_monotonic, check_seff, check_backlog, check_tags:
        Individually disable checks (all on by default).
    """

    #: The checker only reads events and raises; it never reaches into
    #: the simulator, so the link's batch drain may run under it.
    passive = True

    VIRTUAL_MONOTONIC = "virtual-time-monotonic"
    SEFF = "seff-eligibility"
    BACKLOG = "backlog-conservation"
    TAGS = "tag-consistency"

    def __init__(self, tolerance=1e-9, check_monotonic=True, check_seff=True,
                 check_backlog=True, check_tags=True):
        self.tolerance = tolerance
        self.check_monotonic = check_monotonic
        self.check_seff = check_seff
        self.check_backlog = check_backlog
        self.check_tags = check_tags
        self.events_checked = 0
        self._audits = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _audit(self, scheduler):
        a = self._audits.get(scheduler)
        if a is None:
            a = self._audits[scheduler] = _SchedulerAudit()
        return a

    def _slack(self, scale):
        return self.tolerance * max(1, abs(scale)) if self.tolerance else 0

    def _fail(self, invariant, message, event):
        raise InvariantViolation(invariant, message, event=event)

    # ------------------------------------------------------------------
    # Sink interface
    # ------------------------------------------------------------------
    def accept(self, event):
        self.events_checked += 1
        kind = event.kind
        if kind == "enqueue":
            self._on_enqueue(event)
        elif kind == "dequeue":
            self._on_dequeue(event)
        elif kind == "drop":
            self._on_drop(event)
        elif kind == "virtual-time":
            self._on_virtual(event)
        elif kind == "node-restart":
            self._on_restart(event)
        elif kind == "fault":
            self._on_fault(event)

    # ------------------------------------------------------------------
    # Per-event checks
    # ------------------------------------------------------------------
    def _on_enqueue(self, ev):
        a = self._audit(ev.scheduler)
        a.enqueues += 1
        if a.backlog is None:
            a.backlog = ev.backlog   # adopt a stream joined mid-run
            return
        if a.backlog == 0:
            # First arrival of a new system busy period: schedulers may
            # have (or be about to) zero their clocks and tags.
            a.new_busy_period()
        a.backlog += 1
        if self.check_backlog and a.backlog != ev.backlog:
            self._fail(
                self.BACKLOG,
                f"{ev.scheduler}: backlog after enqueue is {ev.backlog}, "
                f"but enqueues - dequeues - drops gives {a.backlog}",
                ev)

    def _on_dequeue(self, ev):
        a = self._audit(ev.scheduler)
        a.dequeues += 1
        if a.backlog is None:
            a.backlog = ev.backlog
        else:
            a.backlog -= 1
            if self.check_backlog and a.backlog != ev.backlog:
                self._fail(
                    self.BACKLOG,
                    f"{ev.scheduler}: backlog after dequeue is {ev.backlog},"
                    f" but enqueues - dequeues - drops gives {a.backlog}",
                    ev)
        if self.check_seff and ev.seff and ev.virtual_start is not None \
                and ev.virtual_time is not None:
            if ev.virtual_start > ev.virtual_time \
                    + self._slack(ev.virtual_time):
                self._fail(
                    self.SEFF,
                    f"{ev.scheduler}: dequeued packet of flow "
                    f"{ev.flow_id!r} is ineligible — virtual start "
                    f"{ev.virtual_start} exceeds system virtual time "
                    f"{ev.virtual_time}",
                    ev)
        if self.check_tags and ev.virtual_start is not None \
                and ev.virtual_finish is not None:
            if ev.virtual_finish <= ev.virtual_start \
                    - self._slack(ev.virtual_start):
                self._fail(
                    self.TAGS,
                    f"{ev.scheduler}: flow {ev.flow_id!r} has virtual "
                    f"finish {ev.virtual_finish} <= virtual start "
                    f"{ev.virtual_start}",
                    ev)
        if self.check_monotonic and ev.virtual_time is not None:
            self._advance_clock(a, None, ev.virtual_time, ev)
        if a.backlog == 0:
            # Busy period over; clocks may legitimately restart from zero.
            a.new_busy_period()

    def _on_drop(self, ev):
        a = self._audit(ev.scheduler)
        a.drops += 1
        if ev.evicted and a.backlog is not None:
            # Drop-front / longest-queue-drop evict an already-queued
            # packet; the queue model loses one where a rejected arrival
            # (evicted=False) never entered it.
            a.backlog -= 1
        if self.check_backlog:
            seen = a.flow_drops.get(ev.flow_id)
            if seen is not None and ev.drops != seen + 1:
                self._fail(
                    self.BACKLOG,
                    f"{ev.scheduler}: flow {ev.flow_id!r} drop counter "
                    f"jumped from {seen} to {ev.drops}",
                    ev)
        a.flow_drops[ev.flow_id] = ev.drops

    def _on_virtual(self, ev):
        a = self._audit(ev.scheduler)
        if ev.reset:
            a.virtual[ev.node] = ev.virtual
            return
        if self.check_monotonic:
            self._advance_clock(a, ev.node, ev.virtual, ev)

    def _advance_clock(self, audit, node, value, ev):
        last = audit.virtual.get(node)
        if last is not None and value < last - self._slack(last):
            where = f"node {node!r}" if node is not None else "system"
            self._fail(
                self.VIRTUAL_MONOTONIC,
                f"{ev.scheduler}: {where} virtual time went backwards "
                f"({last} -> {value}) inside a busy period",
                ev)
        if last is None or value > last:
            audit.virtual[node] = value

    def _on_fault(self, ev):
        # Reconfiguration recomputes finish tags against new rates/shares
        # (and SCFQ-style clocks track the in-service finish tag), so the
        # monotonicity guarantee restarts at the fault boundary.  Backlog
        # and drop accounting deliberately survive: faults never excuse a
        # lost packet.
        if ev.action in _REBASING_FAULTS:
            a = self._audit(ev.scheduler)
            a.virtual.clear()
            a.start_tags.clear()

    def _on_restart(self, ev):
        if not self.check_tags:
            return
        a = self._audit(ev.scheduler)
        if ev.start_tag is None:
            return  # the root has no logical-queue tags
        if ev.head_length is not None and ev.rate is not None:
            expected = ev.start_tag + ev.head_length / ev.rate
            if abs(ev.finish_tag - expected) > self._slack(expected):
                self._fail(
                    self.TAGS,
                    f"{ev.scheduler}: node {ev.node!r} finish tag "
                    f"{ev.finish_tag} != start {ev.start_tag} + "
                    f"L/r {ev.head_length}/{ev.rate}",
                    ev)
        last = a.start_tags.get(ev.node)
        if last is not None and ev.start_tag < last - self._slack(last):
            self._fail(
                self.TAGS,
                f"{ev.scheduler}: node {ev.node!r} start tag went "
                f"backwards ({last} -> {ev.start_tag}) inside a busy "
                f"period",
                ev)
        if last is None or ev.start_tag > last:
            a.start_tags[ev.node] = ev.start_tag

    # ------------------------------------------------------------------
    def schedulers(self):
        """Names of the schedulers observed so far."""
        return sorted(self._audits)

    def __repr__(self):
        return (f"InvariantChecker(events={self.events_checked}, "
                f"schedulers={len(self._audits)})")
