"""Pluggable consumers of the observability event stream.

A sink is anything with ``accept(event)`` (and optionally ``close()``);
subscribe one to a scheduler with
:meth:`~repro.core.scheduler.PacketScheduler.attach_observer`.  Provided:

* :class:`RingBufferSink` — keeps the last N events in memory (flight
  recorder; cheap enough to leave attached).
* :class:`JSONLSink` — streams events to a JSON-lines file;
  :func:`read_jsonl` reconstructs the identical event sequence.
* :class:`MetricsSink` — streaming per-flow counters, gauges, and delay
  histograms with percentile estimates (no per-event storage).
* :class:`CallbackSink` — adapts a bare callable.
"""

import json
from collections import deque

from repro.obs.events import event_from_dict

__all__ = [
    "Sink",
    "CallbackSink",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "MetricsSink",
    "FlowMetrics",
]


class Sink:
    """Interface for event consumers.

    ``passive`` declares that ``accept`` only reads the event and mutates
    the sink's own state — it never reaches back into the simulator or
    the scheduler (no scheduling, no clock reads, no enqueue/dequeue).
    The link's batch drain relies on this: a chunk of dequeues runs to
    completion before the simulation clock is advanced over it, which is
    unobservable to passive sinks but not to arbitrary callbacks.  The
    base class conservatively says False; a subclass may only set True
    when its ``accept`` honours the contract (raising — as the invariant
    checker does — is fine; it aborts the drain like any dequeue error).
    """

    passive = False

    def accept(self, event):
        raise NotImplementedError

    def close(self):
        """Flush/release resources; called by ``EventBus.close()``."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class CallbackSink(Sink):
    """Forward every event to ``fn(event)``."""

    def __init__(self, fn):
        self.fn = fn

    def accept(self, event):
        self.fn(event)


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events, oldest evicted first."""

    passive = True

    def __init__(self, capacity=65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._buffer = deque(maxlen=capacity)
        self._total = 0

    def accept(self, event):
        self._buffer.append(event)
        self._total += 1

    @property
    def total_seen(self):
        """Events ever accepted (>= len(self) once eviction starts)."""
        return self._total

    def events(self):
        """The retained events, oldest first."""
        return list(self._buffer)

    def clear(self):
        self._buffer.clear()

    def __len__(self):
        return len(self._buffer)

    def __iter__(self):
        return iter(self._buffer)

    def __repr__(self):
        return (f"RingBufferSink({len(self._buffer)}/{self.capacity}, "
                f"seen={self._total})")


def _json_default(value):
    """Serialise non-JSON scalars: Fractions (exact tests) become floats."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class JSONLSink(Sink):
    """Append one JSON object per event to a file (the ``--trace`` format).

    Accepts a path (file opened and owned by the sink) or any writable
    text-file object (left open on ``close``).
    """

    passive = True

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
            self.path = getattr(path_or_file, "name", None)
        else:
            self._fh = open(path_or_file, "w")
            self._owns = True
            self.path = path_or_file
        self.events_written = 0

    def accept(self, event):
        self._fh.write(json.dumps(event.to_dict(), default=_json_default))
        self._fh.write("\n")
        self.events_written += 1

    def close(self):
        if self._owns and not self._fh.closed:
            self._fh.close()
        elif not self._owns:
            self._fh.flush()

    def __repr__(self):
        return f"JSONLSink({self.path!r}, written={self.events_written})"


def read_jsonl(path_or_file):
    """Parse a JSONL trace back into the list of events it encoded."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file
        return [event_from_dict(json.loads(line))
                for line in lines if line.strip()]
    with open(path_or_file) as fh:
        return [event_from_dict(json.loads(line))
                for line in fh if line.strip()]


#: Default delay-histogram bucket upper bounds (seconds): 1 us .. ~17 min,
#: geometric with ratio 4, plus an implicit +inf overflow bucket.
DEFAULT_DELAY_BUCKETS = tuple(1e-6 * 4 ** k for k in range(16))


class FlowMetrics:
    """Counters, gauges, and a delay histogram for one flow."""

    __slots__ = ("enqueues", "dequeues", "drops", "bits_in", "bits_out",
                 "queue_len", "max_queue_len", "delay_count", "delay_sum",
                 "delay_max", "histogram")

    def __init__(self, n_buckets):
        self.enqueues = 0
        self.dequeues = 0
        self.drops = 0
        self.bits_in = 0
        self.bits_out = 0
        self.queue_len = 0
        self.max_queue_len = 0
        self.delay_count = 0
        self.delay_sum = 0.0
        self.delay_max = 0.0
        # one extra slot = the +inf overflow bucket
        self.histogram = [0] * (n_buckets + 1)

    @property
    def delay_mean(self):
        return self.delay_sum / self.delay_count if self.delay_count else 0.0


class MetricsSink(Sink):
    """Streaming per-flow metrics — the long-run alternative to tracing.

    Unlike :class:`RingBufferSink` / :class:`JSONLSink` it stores nothing
    per event: counts, byte totals, queue-length gauges, and a fixed-bucket
    delay histogram per flow (plus the same aggregated across flows).
    ``delay_percentile`` answers from the histogram, returning the bucket
    upper bound — a conservative estimate whose resolution is set by
    ``buckets``.
    """

    passive = True

    def __init__(self, buckets=DEFAULT_DELAY_BUCKETS):
        self.buckets = tuple(buckets)
        if any(b <= a for a, b in zip(self.buckets, self.buckets[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self._flows = {}
        self.backlog = 0
        self.max_backlog = 0
        self.events_seen = 0

    def _metrics(self, flow_id):
        m = self._flows.get(flow_id)
        if m is None:
            m = self._flows[flow_id] = FlowMetrics(len(self.buckets))
        return m

    def accept(self, event):
        self.events_seen += 1
        kind = event.kind
        if kind == "enqueue":
            m = self._metrics(event.flow_id)
            m.enqueues += 1
            m.bits_in += event.length
            m.queue_len = event.flow_backlog
            if event.flow_backlog > m.max_queue_len:
                m.max_queue_len = event.flow_backlog
            self.backlog = event.backlog
            if event.backlog > self.max_backlog:
                self.max_backlog = event.backlog
        elif kind == "dequeue":
            m = self._metrics(event.flow_id)
            m.dequeues += 1
            m.bits_out += event.length
            if m.queue_len > 0:
                m.queue_len -= 1
            self.backlog = event.backlog
            delay = event.delay
            if delay is not None:
                self._observe_delay(m, delay)
        elif kind == "drop":
            self._metrics(event.flow_id).drops += 1

    def _observe_delay(self, m, delay):
        m.delay_count += 1
        m.delay_sum += delay
        if delay > m.delay_max:
            m.delay_max = delay
        for i, bound in enumerate(self.buckets):
            if delay <= bound:
                m.histogram[i] += 1
                return
        m.histogram[-1] += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def flows(self):
        return sorted(self._flows, key=str)

    def flow(self, flow_id):
        """The :class:`FlowMetrics` of one flow (must have been seen)."""
        return self._flows[flow_id]

    def counter(self, flow_id, name):
        return getattr(self._flows[flow_id], name)

    def total(self, name):
        """Sum a counter over all flows (e.g. ``total('drops')``)."""
        return sum(getattr(m, name) for m in self._flows.values())

    def _merged_histogram(self, flow_id=None):
        if flow_id is not None:
            return self._flows[flow_id].histogram
        merged = [0] * (len(self.buckets) + 1)
        for m in self._flows.values():
            for i, c in enumerate(m.histogram):
                merged[i] += c
        return merged

    def delay_percentile(self, q, flow_id=None):
        """Upper bound of the histogram bucket containing quantile ``q``.

        Returns ``float('inf')`` for mass in the overflow bucket and 0.0
        when no delays were observed.
        """
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        hist = self._merged_histogram(flow_id)
        total = sum(hist)
        if total == 0:
            return 0.0
        target = q * total
        acc = 0
        for i, count in enumerate(hist):
            acc += count
            if acc >= target:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")

    def summary(self):
        """One plain dict per flow plus system-wide gauges."""
        out = {
            "backlog": self.backlog,
            "max_backlog": self.max_backlog,
            "events": self.events_seen,
            "flows": {},
        }
        for fid in self.flows():
            m = self._flows[fid]
            out["flows"][fid] = {
                "enqueues": m.enqueues,
                "dequeues": m.dequeues,
                "drops": m.drops,
                "bits_in": m.bits_in,
                "bits_out": m.bits_out,
                "queue_len": m.queue_len,
                "max_queue_len": m.max_queue_len,
                "delay_mean": m.delay_mean,
                "delay_max": m.delay_max,
            }
        return out

    def format_report(self):
        """A compact text table (used by ``python -m repro stats``)."""
        lines = [
            f"{'flow':>12s} {'enq':>8s} {'deq':>8s} {'drop':>6s} "
            f"{'maxQ':>5s} {'mean delay':>11s} {'p99 delay':>11s} "
            f"{'max delay':>11s}"
        ]
        for fid in self.flows():
            m = self._flows[fid]
            p99 = self.delay_percentile(0.99, fid) if m.delay_count else 0.0
            p99s = "inf" if p99 == float("inf") else f"{1e3 * p99:.3f}ms"
            lines.append(
                f"{str(fid):>12s} {m.enqueues:8d} {m.dequeues:8d} "
                f"{m.drops:6d} {m.max_queue_len:5d} "
                f"{1e3 * m.delay_mean:10.3f}ms {p99s:>11s} "
                f"{1e3 * m.delay_max:10.3f}ms"
            )
        lines.append(
            f"{'total':>12s} {self.total('enqueues'):8d} "
            f"{self.total('dequeues'):8d} {self.total('drops'):6d} "
            f"{self.max_backlog:5d}"
        )
        return "\n".join(lines)

    def __repr__(self):
        return (f"MetricsSink(flows={len(self._flows)}, "
                f"events={self.events_seen})")
