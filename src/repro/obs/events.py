"""The typed event stream at the heart of the observability subsystem.

Every instrumented component (:class:`~repro.core.scheduler.PacketScheduler`
and its subclasses, the H-PFQ hierarchy, :class:`~repro.sim.link.Link`)
emits small, immutable-ish event records through an :class:`EventBus`.  The
emission sites are guarded by a single ``self._obs is None`` check, so a
scheduler with no observer attached pays one attribute test per operation —
nothing is allocated and no sink code runs (see
``benchmarks/test_obs_overhead.py`` for the enforced bound).

Event taxonomy
--------------
* :class:`EnqueueEvent` — a packet was accepted into a flow queue.
* :class:`DequeueEvent` — a packet was selected for transmission; carries
  the service interval, the algorithm's virtual tags, the system virtual
  time at selection, and whether the scheduler claims the SEFF property.
* :class:`DropEvent` — a buffer cap discarded an arrival (drop-tail).
* :class:`VirtualTimeUpdate` — a scheduler-wide (``node is None``) or
  per-hierarchy-node virtual clock advanced; ``reset`` marks the start of
  a new system busy period, where V legitimately returns to zero.
* :class:`NodeRestart` — an H-PFQ node adopted a new head packet (the
  paper's RESTART-NODE, plus the leaf re-tagging step of RESET-PATH and
  the leaf step of ARRIVE); carries the fresh start/finish tags and the
  node's guaranteed rate so checkers can validate tag arithmetic.

Events are plain-data: ``to_dict`` / :func:`event_from_dict` round-trip
them through JSON-friendly dictionaries (the JSONL sink relies on this),
and equality is field-wise, which makes trace comparisons trivial in tests.
"""

__all__ = [
    "SchedulerEvent",
    "EnqueueEvent",
    "DequeueEvent",
    "DropEvent",
    "VirtualTimeUpdate",
    "NodeRestart",
    "FaultEvent",
    "IncidentEvent",
    "EventBus",
    "event_from_dict",
    "EVENT_KINDS",
]


class SchedulerEvent:
    """Base class: ``time`` (scheduler clock) and ``scheduler`` (its name).

    Subclasses list their payload in ``_fields``; the base provides
    ``to_dict``, field-wise equality, and a compact ``repr``.
    """

    kind = "event"
    _fields = ("time", "scheduler")
    __slots__ = ("time", "scheduler")

    def __init__(self, time, scheduler):
        self.time = time
        self.scheduler = scheduler

    def to_dict(self):
        """A JSON-friendly dict, ``kind`` first (the JSONL wire format)."""
        d = {"kind": self.kind}
        for f in self._fields:
            d[f] = getattr(self, f)
        return d

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in self._fields)

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self):
        return hash((self.kind,) + tuple(
            getattr(self, f) for f in self._fields))

    def __repr__(self):
        body = ", ".join(f"{f}={getattr(self, f)!r}" for f in self._fields)
        return f"{type(self).__name__}({body})"


class EnqueueEvent(SchedulerEvent):
    """A packet joined its flow queue.

    ``backlog`` is the scheduler-wide packet count *after* the enqueue and
    ``flow_backlog`` the flow's own queue length — both are what the
    backlog-conservation invariant audits.
    """

    kind = "enqueue"
    _fields = ("time", "scheduler", "flow_id", "packet_uid", "length",
               "backlog", "flow_backlog")
    __slots__ = ("flow_id", "packet_uid", "length", "backlog", "flow_backlog")

    def __init__(self, time, scheduler, flow_id, packet_uid, length,
                 backlog, flow_backlog):
        super().__init__(time, scheduler)
        self.flow_id = flow_id
        self.packet_uid = packet_uid
        self.length = length
        self.backlog = backlog
        self.flow_backlog = flow_backlog


class DequeueEvent(SchedulerEvent):
    """A packet was selected and its transmission interval fixed.

    ``virtual_start`` / ``virtual_finish`` are the served packet's tags (as
    on :class:`~repro.core.scheduler.ScheduledPacket`; ``None`` for tagless
    schedulers), ``virtual_time`` the system virtual time V at selection
    (``None`` when the algorithm has no V), and ``seff`` the scheduler's
    claim that its selections satisfy Smallest-Eligible-Finish-First —
    the invariant checker enforces ``virtual_start <= virtual_time`` when
    the flag is set.  ``backlog`` is the packet count after the dequeue.
    """

    kind = "dequeue"
    _fields = ("time", "scheduler", "flow_id", "packet_uid", "length",
               "arrival_time", "start_time", "finish_time",
               "virtual_start", "virtual_finish", "virtual_time",
               "seff", "backlog")
    __slots__ = ("flow_id", "packet_uid", "length", "arrival_time",
                 "start_time", "finish_time", "virtual_start",
                 "virtual_finish", "virtual_time", "seff", "backlog")

    def __init__(self, time, scheduler, flow_id, packet_uid, length,
                 arrival_time, start_time, finish_time,
                 virtual_start, virtual_finish, virtual_time, seff, backlog):
        super().__init__(time, scheduler)
        self.flow_id = flow_id
        self.packet_uid = packet_uid
        self.length = length
        self.arrival_time = arrival_time
        self.start_time = start_time
        self.finish_time = finish_time
        self.virtual_start = virtual_start
        self.virtual_finish = virtual_finish
        self.virtual_time = virtual_time
        self.seff = seff
        self.backlog = backlog

    @property
    def delay(self):
        """Arrival-to-transmission-end delay, when the arrival is known."""
        if self.arrival_time is None:
            return None
        return self.finish_time - self.arrival_time


class DropEvent(SchedulerEvent):
    """A buffer cap discarded a packet.

    ``drops`` is the flow's cumulative drop count *including* this one.
    ``policy`` names the drop policy that fired (``"tail"``, ``"front"``,
    ``"longest"``); ``evicted`` is False when the *arriving* packet was
    rejected (it never entered a queue) and True when an already-queued
    packet was evicted to make room — the backlog-conservation audit must
    decrement its queue model only in the latter case.
    """

    kind = "drop"
    _fields = ("time", "scheduler", "flow_id", "packet_uid", "length",
               "drops", "policy", "evicted")
    __slots__ = ("flow_id", "packet_uid", "length", "drops", "policy",
                 "evicted")

    def __init__(self, time, scheduler, flow_id, packet_uid, length, drops,
                 policy="tail", evicted=False):
        super().__init__(time, scheduler)
        self.flow_id = flow_id
        self.packet_uid = packet_uid
        self.length = length
        self.drops = drops
        self.policy = policy
        self.evicted = evicted


class FaultEvent(SchedulerEvent):
    """A fault-plan action fired (``repro.faults``).

    ``action`` names the injected fault (``link-outage-start``,
    ``link-rate-change``, ``share-change``, ``flow-added`` ...), ``target``
    the affected entity (a flow/node name, or None for link-wide faults)
    and ``value`` the action's parameter (new rate, new share, outage
    duration), if any.  Fault events mark the exact points where a checked
    trace is *allowed* to change regime.
    """

    kind = "fault"
    _fields = ("time", "scheduler", "action", "target", "value")
    __slots__ = ("action", "target", "value")

    def __init__(self, time, scheduler, action, target=None, value=None):
        super().__init__(time, scheduler)
        self.action = action
        self.target = target
        self.value = value


class IncidentEvent(SchedulerEvent):
    """The service layer degraded gracefully instead of crashing.

    Emitted by :mod:`repro.serve` when something went wrong but the run
    kept going: ``category`` is a stable slug (``"quarantine"``,
    ``"stall"``, ``"crash-recovered"``, ``"checkpoint-skipped"``),
    ``target`` the affected entity (a flow/node name, a checkpoint path;
    None for run-wide incidents) and ``detail`` a human-readable
    explanation.  Unlike :class:`FaultEvent` (a *planned* perturbation an
    experiment injected), an incident is unplanned — dashboards and soak
    gates count them.
    """

    kind = "incident"
    _fields = ("time", "scheduler", "category", "target", "detail")
    __slots__ = ("category", "target", "detail")

    def __init__(self, time, scheduler, category, target=None, detail=None):
        super().__init__(time, scheduler)
        self.category = category
        self.target = target
        self.detail = detail


class VirtualTimeUpdate(SchedulerEvent):
    """A virtual clock advanced (or legitimately reset to zero).

    ``node`` is ``None`` for the scheduler-wide V of one-level algorithms,
    or the interior node's name inside an H-PFQ hierarchy.  Within one
    system busy period V must be non-decreasing (eq. 27's slope->=0 side);
    ``reset=True`` marks the sanctioned return to zero at a busy-period
    boundary.
    """

    kind = "virtual-time"
    _fields = ("time", "scheduler", "node", "virtual", "reset")
    __slots__ = ("node", "virtual", "reset")

    def __init__(self, time, scheduler, node, virtual, reset=False):
        super().__init__(time, scheduler)
        self.node = node
        self.virtual = virtual
        self.reset = reset


class NodeRestart(SchedulerEvent):
    """An H-PFQ node adopted a head packet and refreshed its tags.

    Emitted by RESTART-NODE for interior nodes (``child`` names the
    selected child), and by ARRIVE / RESET-PATH when a leaf re-heads
    (``child is None``).  ``start_tag``/``finish_tag`` are the node's fresh
    logical-queue tags (``None`` for the root, which has no parent queue);
    ``head_length`` and ``rate`` let checkers verify
    ``finish_tag == start_tag + head_length / rate``.  ``virtual`` is the
    node's own virtual time after the restart (``None`` for leaves).
    """

    kind = "node-restart"
    _fields = ("time", "scheduler", "node", "child", "start_tag",
               "finish_tag", "virtual", "head_length", "rate")
    __slots__ = ("node", "child", "start_tag", "finish_tag", "virtual",
                 "head_length", "rate")

    def __init__(self, time, scheduler, node, child, start_tag, finish_tag,
                 virtual, head_length, rate):
        super().__init__(time, scheduler)
        self.node = node
        self.child = child
        self.start_tag = start_tag
        self.finish_tag = finish_tag
        self.virtual = virtual
        self.head_length = head_length
        self.rate = rate


EVENT_KINDS = {
    cls.kind: cls
    for cls in (EnqueueEvent, DequeueEvent, DropEvent, VirtualTimeUpdate,
                NodeRestart, FaultEvent, IncidentEvent)
}


def event_from_dict(d):
    """Rebuild an event from its ``to_dict`` form (JSONL deserialisation).

    Fields absent from the dict fall back to the event constructor's
    defaults, so traces written before a field existed still load.
    """
    try:
        cls = EVENT_KINDS[d["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind: {d.get('kind')!r}") from None
    return cls(**{f: d[f] for f in cls._fields if f in d})


class EventBus:
    """Fans one event stream out to any number of sinks.

    The bus itself is the object schedulers hold in ``_obs``; emission is a
    plain loop over subscribed sinks, so a sink that raises (the invariant
    checker does, deliberately) aborts the operation that emitted the event
    — the violation surfaces *at* the offending enqueue/dequeue call.
    """

    __slots__ = ("sinks",)

    def __init__(self, *sinks):
        self.sinks = list(sinks)

    @property
    def passive(self):
        """True when every subscribed sink is passive (see
        :class:`~repro.obs.sinks.Sink`): the whole bus then only records,
        so event emission cannot feed back into the simulation and the
        link's batch drain stays legal.  Evaluated per drain, not per
        event."""
        return all(getattr(sink, "passive", False) for sink in self.sinks)

    def subscribe(self, sink):
        if sink not in self.sinks:
            self.sinks.append(sink)
        return sink

    def unsubscribe(self, sink):
        try:
            self.sinks.remove(sink)
            return True
        except ValueError:
            return False

    def emit(self, event):
        for sink in self.sinks:
            sink.accept(event)

    def close(self):
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __len__(self):
        return len(self.sinks)

    def __repr__(self):
        return f"EventBus(sinks={len(self.sinks)})"
