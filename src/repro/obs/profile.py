"""Opt-in wall-clock profiling of the scheduler hot path.

:class:`SchedulerProfiler` shadows a *single scheduler instance's*
``enqueue`` / ``dequeue`` with timing wrappers (instance attributes over
the class methods), so unprofiled schedulers keep the untouched fast path.
Use it as a context manager or call :meth:`detach` to restore the
original methods; ``summary()`` yields per-operation percentile
statistics, surfaced by ``python -m repro stats``.
"""

import math
import time

__all__ = [
    "SchedulerProfiler",
    "OpStats",
    "percentile",
    "CHUNK_CHOICES",
    "recommend_chunk",
    "ChunkAutotuner",
]


def percentile(sorted_samples, q):
    """Quantile ``q`` in (0, 1] of an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    if not 0 < q <= 1:
        raise ValueError(f"quantile must be in (0, 1], got {q!r}")
    index = max(0, math.ceil(q * len(sorted_samples)) - 1)
    return sorted_samples[index]


class OpStats:
    """Summary of one operation's timing samples (seconds)."""

    __slots__ = ("count", "total", "mean", "p50", "p90", "p99", "max")

    def __init__(self, samples):
        self.count = len(samples)
        self.total = sum(samples)
        self.mean = self.total / self.count if samples else 0.0
        ordered = sorted(samples)
        self.p50 = percentile(ordered, 0.50)
        self.p90 = percentile(ordered, 0.90)
        self.p99 = percentile(ordered, 0.99)
        self.max = ordered[-1] if ordered else 0.0

    def to_dict(self):
        return {f: getattr(self, f) for f in self.__slots__}

    def __repr__(self):
        return (f"OpStats(n={self.count}, mean={1e6 * self.mean:.2f}us, "
                f"p99={1e6 * self.p99:.2f}us)")


class SchedulerProfiler:
    """Times every enqueue/dequeue of one scheduler instance.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.core.scheduler.PacketScheduler`.
    clock:
        Timer returning seconds (default :func:`time.perf_counter`).
    sim:
        Optional :class:`~repro.sim.engine.Simulator` whose event-engine
        counters (elided events, event-pool hit rate, calendar resizes)
        are appended to :meth:`format_report`.  Assignable after
        construction — the pipeline driver builds the simulator later.
    """

    def __init__(self, scheduler, clock=time.perf_counter, sim=None):
        self.scheduler = scheduler
        self.sim = sim
        self.enqueue_samples = []
        self.dequeue_samples = []
        #: One ``(seconds, packets)`` pair per batch-API call
        #: (enqueue_batch / dequeue_batch / drain_until).
        self.batch_samples = []
        self._attached = False
        self._clock = clock
        self.attach()

    def attach(self):
        if self._attached:
            return self
        sched = self.scheduler
        clock = self._clock
        orig_enqueue = sched.enqueue
        orig_dequeue = sched.dequeue
        orig_enqueue_batch = sched.enqueue_batch
        orig_dequeue_batch = sched.dequeue_batch
        orig_drain_until = sched.drain_until
        enq_samples = self.enqueue_samples
        deq_samples = self.dequeue_samples
        batch_samples = self.batch_samples

        def enqueue(packet, now=None):
            t0 = clock()
            try:
                return orig_enqueue(packet, now)
            finally:
                enq_samples.append(clock() - t0)

        def dequeue(now=None):
            t0 = clock()
            try:
                return orig_dequeue(now)
            finally:
                deq_samples.append(clock() - t0)

        # The batch wrappers record whole-chunk wall time plus the chunk
        # size; note a batch API that falls back to the per-packet loop
        # also feeds the per-packet wrappers above, so batch and
        # per-packet samples overlap rather than add.
        def enqueue_batch(packets, now=None):
            t0 = clock()
            accepted = orig_enqueue_batch(packets, now)
            batch_samples.append((clock() - t0, accepted))
            return accepted

        def dequeue_batch(n, now=None):
            t0 = clock()
            records = orig_dequeue_batch(n, now)
            batch_samples.append((clock() - t0, len(records)))
            return records

        def drain_until(limit, now=None, into=None):
            before = 0 if into is None else len(into)
            t0 = clock()
            records = orig_drain_until(limit, now, into)
            batch_samples.append((clock() - t0, len(records) - before))
            return records

        sched.enqueue = enqueue
        sched.dequeue = dequeue
        sched.enqueue_batch = enqueue_batch
        sched.dequeue_batch = dequeue_batch
        sched.drain_until = drain_until
        self._attached = True
        return self

    def detach(self):
        """Restore the scheduler's unwrapped methods."""
        if not self._attached:
            return
        # The wrappers are instance attributes shadowing the class methods;
        # deleting them reinstates the original (class-level) fast path.
        del self.scheduler.enqueue
        del self.scheduler.dequeue
        del self.scheduler.enqueue_batch
        del self.scheduler.dequeue_batch
        del self.scheduler.drain_until
        self._attached = False

    @property
    def attached(self):
        return self._attached

    def reset(self):
        """Discard collected samples (keeps the wrappers attached)."""
        self.enqueue_samples.clear()
        self.dequeue_samples.clear()
        self.batch_samples.clear()

    def summary(self):
        """``{"enqueue": OpStats, "dequeue": OpStats, "batch": OpStats}``.

        ``batch`` covers whole-chunk calls (one sample per batch-API
        call, however many packets it moved).
        """
        out = {
            "enqueue": OpStats(self.enqueue_samples),
            "dequeue": OpStats(self.dequeue_samples),
        }
        if self.batch_samples:
            out["batch"] = OpStats([s for s, _n in self.batch_samples])
        return out

    def batch_stats(self):
        """The profiled scheduler's own batch counters (see
        :meth:`~repro.core.scheduler.PacketScheduler.batch_stats`)."""
        return self.scheduler.batch_stats()

    def format_report(self):
        """Percentile table in microseconds (``python -m repro stats``)."""
        lines = [f"{'op':>8s} {'count':>9s} {'mean':>9s} {'p50':>9s} "
                 f"{'p90':>9s} {'p99':>9s} {'max':>9s}   (us)"]
        for op, stats in self.summary().items():
            lines.append(
                f"{op:>8s} {stats.count:9d} "
                f"{1e6 * stats.mean:9.3f} {1e6 * stats.p50:9.3f} "
                f"{1e6 * stats.p90:9.3f} {1e6 * stats.p99:9.3f} "
                f"{1e6 * stats.max:9.3f}"
            )
        batch = self.scheduler.batch_stats()
        if batch["batch_calls"]:
            hist = " ".join(f"{bucket}:{count}" for bucket, count
                            in batch["packets_per_batch"].items() if count)
            lines.append(
                f"batches: {batch['batch_calls']} calls, "
                f"{batch['batch_packets']} packets "
                f"({100 * batch['batched_fraction']:.1f}% of ops batched; "
                f"sizes {hist})")
        sim = self.sim
        if sim is not None:
            acquires = sim.pool_hits + sim.pool_misses
            pool = (f", event pool {sim.pool_hits}/{acquires} hits "
                    f"({100.0 * sim.pool_hit_rate:.1f}%)" if acquires
                    else "")
            lines.append(
                f"engine: {sim.engine_active}, "
                f"{sim.events_processed} events processed, "
                f"{sim.events_elided} elided"
                f"{pool}, {sim.calendar_resizes} calendar resize(s)")
        return "\n".join(lines)

    def __enter__(self):
        return self.attach()

    def __exit__(self, exc_type, exc, tb):
        self.detach()
        return False

    def __repr__(self):
        state = "attached" if self._attached else "detached"
        return (f"SchedulerProfiler({self.scheduler.name!r}, {state}, "
                f"enq={len(self.enqueue_samples)}, "
                f"deq={len(self.dequeue_samples)})")


# ----------------------------------------------------------------------
# Chunk-size autotuning from the batch histogram
# ----------------------------------------------------------------------
#: Candidate ``drain_chunk`` values, one representative per
#: :data:`~repro.core.scheduler.BATCH_BUCKETS` histogram bucket
#: ("1", "2-7", "8-63", "64-511", "512+").
CHUNK_CHOICES = (1, 4, 32, 256, 512)


def recommend_chunk(batch_samples, choices=CHUNK_CHOICES):
    """Pick a drain chunk from ``(seconds, packets)`` batch samples.

    Pure and deterministic — the same histogram always yields the same
    recommendation (pinned by the autotuner test suite).  The samples
    are the format :attr:`SchedulerProfiler.batch_samples` collects:
    one ``(wall_seconds, packets_moved)`` pair per batch-API call.
    Each sample lands in its :data:`~repro.core.scheduler.BATCH_BUCKETS`
    size bucket; the bucket with the lowest aggregate per-packet cost
    marks the measured amortization sweet spot and its representative
    ``choices`` entry becomes the recommended chunk (ties break toward
    the smaller chunk — latency over marginal throughput).  Returns
    ``None`` when the samples moved no packets at all, meaning "leave
    :attr:`~repro.core.scheduler.PacketScheduler.drain_chunk` alone".
    """
    from repro.core.scheduler import BATCH_BUCKETS, _bucket

    if len(choices) != len(BATCH_BUCKETS):
        raise ValueError(
            f"need one chunk choice per histogram bucket "
            f"({len(BATCH_BUCKETS)}), got {len(choices)}"
        )
    seconds = [0.0] * len(BATCH_BUCKETS)
    packets = [0] * len(BATCH_BUCKETS)
    for elapsed, moved in batch_samples:
        if moved > 0:
            index = _bucket(moved)
            seconds[index] += elapsed
            packets[index] += moved
    best = None
    best_cost = None
    for index, moved in enumerate(packets):
        if moved == 0:
            continue
        cost = seconds[index] / moved
        if best_cost is None or cost < best_cost:
            best = index
            best_cost = cost
    return None if best is None else choices[best]


class ChunkAutotuner:
    """Small controller: measure a calibration window, set ``drain_chunk``.

    Wraps one scheduler's batch APIs (instance-attribute shadows, the
    :class:`SchedulerProfiler` technique) to collect the same
    ``(seconds, packets)`` batch histogram, and after ``window`` batch
    calls applies :func:`recommend_chunk` to the scheduler's
    ``drain_chunk`` and restores the unwrapped methods — so the steady
    state runs at full speed with the tuned chunk.  The sim layer
    attaches one per scheduler under ``--chunk auto``; chunking cannot
    change what is scheduled (see ``drain_chunk``), so merge digests are
    unaffected by when the tuner trips.

    Do not stack on top of an attached :class:`SchedulerProfiler` — both
    shadow the same instance attributes.  For offline tuning feed a
    profiler's ``batch_samples`` straight to :func:`recommend_chunk`.
    """

    def __init__(self, scheduler, window=64, choices=CHUNK_CHOICES,
                 clock=time.perf_counter):
        self.scheduler = scheduler
        self.window = window
        self.choices = tuple(choices)
        #: ``(seconds, packets)`` per batch call, recommend_chunk format.
        self.batch_samples = []
        #: The applied recommendation (None until the window fills, and
        #: still None afterwards if the window moved no packets).
        self.chosen = None
        self._clock = clock
        self._attached = False
        self.attach()

    def attach(self):
        if self._attached:
            return self
        sched = self.scheduler
        clock = self._clock
        samples = self.batch_samples
        orig_enqueue_batch = sched.enqueue_batch
        orig_dequeue_batch = sched.dequeue_batch
        orig_drain_until = sched.drain_until

        def enqueue_batch(packets, now=None):
            t0 = clock()
            accepted = orig_enqueue_batch(packets, now)
            samples.append((clock() - t0, accepted))
            if len(samples) >= self.window:
                self._finish()
            return accepted

        def dequeue_batch(n, now=None):
            t0 = clock()
            records = orig_dequeue_batch(n, now)
            samples.append((clock() - t0, len(records)))
            if len(samples) >= self.window:
                self._finish()
            return records

        def drain_until(limit, now=None, into=None):
            before = 0 if into is None else len(into)
            t0 = clock()
            records = orig_drain_until(limit, now, into)
            samples.append((clock() - t0, len(records) - before))
            if len(samples) >= self.window:
                self._finish()
            return records

        sched.enqueue_batch = enqueue_batch
        sched.dequeue_batch = dequeue_batch
        sched.drain_until = drain_until
        self._attached = True
        return self

    def detach(self):
        """Restore the scheduler's unwrapped batch methods."""
        if not self._attached:
            return
        del self.scheduler.enqueue_batch
        del self.scheduler.dequeue_batch
        del self.scheduler.drain_until
        self._attached = False

    @property
    def attached(self):
        return self._attached

    def _finish(self):
        self.detach()
        chunk = recommend_chunk(self.batch_samples, self.choices)
        if chunk is not None:
            self.scheduler.drain_chunk = chunk
        self.chosen = chunk

    def __repr__(self):
        state = "attached" if self._attached else "detached"
        return (f"ChunkAutotuner({self.scheduler.name!r}, {state}, "
                f"samples={len(self.batch_samples)}/{self.window}, "
                f"chosen={self.chosen!r})")
