"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package required by the PEP 660 editable-install backend.
"""

from setuptools import setup

setup()
